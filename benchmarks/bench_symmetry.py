"""Symmetry-breaking + orbit-multiplicity counting, measured.

Standalone harness writing ``BENCH_symmetry.json`` at the repository
root:

* **Motif census A/B** (the headline) — the Fig 11 motif-counting
  workload (every connected pattern on k=3 and k=4 vertices) on the
  patents and mico stand-ins, counted per pattern twice: the *baseline*
  uses the classic heuristic restriction sets with orbit counting off
  on the indexed kernel (the pre-optimizer behaviour), the *optimized*
  side uses the anchor-search minimal sets, orbit-multiplicity bulk
  counting, and the decomposed kernel.  The compared quantity is
  *enumerated embeddings* (walked subgraph-tree nodes plus decomposed
  core embeddings); counts are asserted identical per pattern.
* **Restriction set sizes** — the optimizer's minimal sets must never
  be larger than the heuristic sets, over the census patterns and the
  q1-q8 query patterns.
* **Cross-backend census equality** — the per-pattern induced census
  (:func:`repro.apps.motif_census_by_pattern`) must be byte-identical
  across the sequential, simulator, and multiprocess backends, and
  equal to the seed aggregation-based ``motifs()`` census after label
  erasure.

The acceptance target is a >= 2x geometric-mean reduction in
enumerated embeddings over the census patterns.  Cliques gain nothing
from orbit counting (their minimal chains already collapse the tree to
one representative) and are reported at ~1x; stars and paths carry the
win.  Exits non-zero when any target is unmet.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import ClusterConfig, FractalContext  # noqa: E402
from repro.apps import (  # noqa: E402
    QUERY_PATTERNS,
    motif_census_by_pattern,
    motif_counts_ignoring_labels,
    motifs,
)
from repro.core.enumerator import set_orbit_counting  # noqa: E402
from repro.harness import bench_mico, bench_patents  # noqa: E402
from repro.pattern import (  # noqa: E402
    all_connected_patterns,
    heuristic_symmetry_breaking_conditions,
    minimal_restriction_set,
    set_symmetry_construction,
)
from repro.runtime.mp_backend import MultiprocessConfig  # noqa: E402

from bench_schema import make_header  # noqa: E402

DEFAULT_OUT = REPO_ROOT / "BENCH_symmetry.json"
TARGET_REDUCTION = 2.0


def run_count(graph, pattern, kernel: str, engine=None):
    """One counting run; returns (count, enumerated, wall_s)."""
    context = FractalContext(
        engine=engine if engine is not None else "sequential",
        pattern_kernel=kernel,
    )
    fractoid = context.from_graph(graph).pfractoid(pattern).expand(
        pattern.n_vertices
    )
    started = time.perf_counter()
    report = fractoid.execute(collect="count")
    wall = time.perf_counter() - started
    m = report.metrics
    enumerated = m.subgraphs_enumerated + m.decomp_core_embeddings
    return report.result_count, enumerated, wall


def measure_pattern(name: str, graph, pattern, reps: int) -> Dict:
    """Baseline (heuristic sets, no orbit counting, indexed) vs
    optimized (minimal sets, orbit counting, decomposed)."""
    walls = {"baseline": [], "optimized": []}
    enumerated = {}
    counts = {}
    for _ in range(reps):
        previous_mode = set_symmetry_construction("heuristic")
        previous_orbit = set_orbit_counting(False)
        try:
            count, enum, wall = run_count(graph, pattern, "indexed")
        finally:
            set_orbit_counting(previous_orbit)
            set_symmetry_construction(previous_mode)
        counts["baseline"], enumerated["baseline"] = count, enum
        walls["baseline"].append(wall)

        count, enum, wall = run_count(graph, pattern, "decomposed")
        counts["optimized"], enumerated["optimized"] = count, enum
        walls["optimized"].append(wall)
    if counts["baseline"] != counts["optimized"]:
        raise AssertionError(
            f"{name}: counts disagree (baseline {counts['baseline']}, "
            f"optimized {counts['optimized']})"
        )
    reduction = (
        enumerated["baseline"] / enumerated["optimized"]
        if enumerated["optimized"]
        else None
    )
    record = {
        "matches": counts["baseline"],
        "enumerated_baseline": enumerated["baseline"],
        "enumerated_optimized": enumerated["optimized"],
        "reduction": round(reduction, 3) if reduction else None,
        "wall_s_baseline": round(min(walls["baseline"]), 4),
        "wall_s_optimized": round(min(walls["optimized"]), 4),
    }
    print(
        f"  {name:16s} {record['matches']:>9d} matches  "
        f"enumerated {enumerated['baseline']:>9d} -> "
        f"{enumerated['optimized']:>9d} "
        f"({reduction:.2f}x)" if reduction else f"  {name:16s} trivial"
    )
    return record


def restriction_sizes(patterns: Dict[str, object]) -> Dict:
    """Minimal vs heuristic restriction-set sizes; minimal must win."""
    sizes = {}
    violations = []
    for name, pattern in patterns.items():
        plan = minimal_restriction_set(pattern)
        heuristic = len(heuristic_symmetry_breaking_conditions(pattern))
        sizes[name] = {
            "minimal": len(plan.conditions),
            "heuristic": heuristic,
            "group_order": plan.group_order,
        }
        if len(plan.conditions) > heuristic:
            violations.append(name)
        print(
            f"  {name:16s} minimal {len(plan.conditions)} vs heuristic "
            f"{heuristic} (|Aut| {plan.group_order})"
        )
    if violations:
        raise AssertionError(
            f"minimal sets larger than heuristic for: {violations}"
        )
    return sizes


def census_key(census) -> Dict[str, int]:
    return {p.canonical_code(): c for p, c in census.items() if c}


def cross_backend_census(graph, k: int) -> Dict:
    """Per-pattern census equality across all three backends + seed."""
    fc = FractalContext(engine="sequential")
    fg = fc.from_graph(graph)
    seed = census_key(motif_counts_ignoring_labels(motifs(fg, k)))
    results = {}
    for backend_name, engine in (
        ("sequential", "sequential"),
        ("simulator", ClusterConfig(workers=2, cores_per_worker=2)),
        ("multiprocess", MultiprocessConfig(num_procs=2)),
    ):
        census = census_key(
            motif_census_by_pattern(fg, k, engine=engine, kernel="decomposed")
        )
        if census != seed:
            raise AssertionError(
                f"k={k} census on {backend_name} differs from seed "
                f"motifs(): {census} vs {seed}"
            )
        results[backend_name] = True
    print(
        f"  k={k}: {len(seed)} pattern classes byte-identical on "
        f"sequential/simulator/multiprocess and == seed motifs()"
    )
    return {"classes": len(seed), "backends_agree": True}


def geomean(values: Sequence[float]) -> Optional[float]:
    values = [v for v in values if v and v > 0]
    if not values:
        return None
    return math.exp(sum(math.log(v) for v in values) / len(values))


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="single rep, patents only, k=3 census cross-backend (CI smoke)",
    )
    parser.add_argument("--reps", type=int, default=None, help="repetitions")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)
    reps = args.reps if args.reps is not None else (1 if args.quick else 3)
    if reps < 1:
        parser.error("--reps must be >= 1")

    ks = (3, 4)
    graphs = [("patents", bench_patents(labeled=False))]
    if not args.quick:
        graphs.append(("mico", bench_mico(labeled=False)))

    workloads: Dict[str, Dict] = {}
    for graph_name, graph in graphs:
        print(
            f"motif census A/B on {graph.name} "
            f"({graph.n_vertices} vertices, {graph.n_edges} edges), "
            f"{reps} rep(s) per side:"
        )
        records = {}
        for k in ks:
            for index, pattern in enumerate(all_connected_patterns(k)):
                name = f"k{k}_p{index}_{pattern.n_edges}e"
                records[name] = measure_pattern(name, graph, pattern, reps)
        workloads[graph_name] = records

    print("restriction set sizes (census + q1-q8):")
    size_patterns = dict(QUERY_PATTERNS)
    for k in ks:
        for index, pattern in enumerate(all_connected_patterns(k)):
            size_patterns[f"k{k}_p{index}"] = pattern
    sizes = restriction_sizes(size_patterns)

    print("cross-backend census equality (patents):")
    census_graph = bench_patents(labeled=False)
    backends = {
        f"k{k}": cross_backend_census(census_graph, k)
        for k in ((3,) if args.quick else ks)
    }

    all_records = [
        r for per_graph in workloads.values() for r in per_graph.values()
    ]
    reduction = geomean([r["reduction"] for r in all_records])
    met = bool(reduction and reduction >= TARGET_REDUCTION)

    payload = {
        **make_header(
            "symmetry",
            {
                "mode": "quick" if args.quick else "full",
                "reps": reps,
                "workload": "fig11_motif_census_k3_k4",
            },
            (
                f"minimal restriction sets + orbit counting cut enumerated "
                f"embeddings {reduction:.2f}x (geomean over "
                f"{len(all_records)} census patterns, target "
                f"{TARGET_REDUCTION:.0f}x, {'met' if met else 'NOT met'}); "
                f"census byte-identical on all three backends"
            ),
        ),
        "generated_by": "benchmarks/bench_symmetry.py",
        "methodology": (
            "per census pattern, baseline = heuristic restriction sets + "
            "orbit counting off + indexed kernel; optimized = anchor-search "
            "minimal sets + orbit-multiplicity bulk counting + decomposed "
            "kernel; enumerated embeddings = subgraphs_enumerated + "
            "decomp_core_embeddings; counts asserted identical per pattern; "
            "induced census via per-pattern counting + Möbius transform "
            "asserted equal to the aggregation-based motifs() census on "
            "every backend"
        ),
        "workloads": workloads,
        "restriction_sizes": sizes,
        "cross_backend_census": backends,
        "target": {
            "metric": "enumerated embeddings, geometric mean over census patterns",
            "required_reduction": TARGET_REDUCTION,
            "achieved_reduction": round(reduction, 3) if reduction else None,
            "met": met,
        },
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    if not met:
        print(
            f"FAIL: enumerated-embedding reduction {reduction} < "
            f"{TARGET_REDUCTION}x target"
        )
        return 1
    print(
        f"enumerated-embedding reduction {reduction:.2f}x "
        f"(target {TARGET_REDUCTION:.0f}x) over {len(all_records)} patterns"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
