"""Keyword search over a knowledge graph, with graph reduction.

The paper's §4.3 showcase: RDF-style keyword queries match in localized
regions of the graph, so materializing a reduced view (keeping only
elements that carry a query keyword) slashes the extension cost by orders
of magnitude while returning the same answers.

Run:  python examples/keyword_search_rdf.py
"""

from repro import FractalContext
from repro.apps import keyword_search
from repro.graph import keyword_reduction, wikidata_like


def main() -> None:
    graph = wikidata_like(scale=0.6)
    print(f"knowledge graph: {graph}, {len(graph.all_keywords())} keywords")

    queries = {
        "Q1": ["paris", "revolution"],
        "Q2": ["tom", "cruise", "drama"],
        "Q3": ["woody", "allen", "romance"],
    }

    for name, words in queries.items():
        # How much of the graph is even relevant to this query?
        reduced_view = keyword_reduction(graph, words)
        print(
            f"\n{name} = {words}: reduction keeps "
            f"{reduced_view.graph.n_vertices}/{graph.n_vertices} vertices, "
            f"{reduced_view.graph.n_edges}/{graph.n_edges} edges"
        )

        full = keyword_search(
            FractalContext().from_graph(graph), words
        )
        reduced = keyword_search(
            FractalContext().from_graph(graph), words, use_graph_reduction=True
        )
        saved = 1 - reduced.extension_cost / max(1, full.extension_cost)
        print(
            f"  results: {len(full.subgraphs)} minimal covers | "
            f"EC {full.extension_cost} -> {reduced.extension_cost} "
            f"({saved:.1%} saved)"
        )
        for result in reduced.subgraphs[:3]:
            original_edges = reduced.reduction.original_edges(result.edges)
            endpoints = sorted(
                {v for e in original_edges for v in graph.edge(e)}
            )
            print(f"    cover: edges={original_edges} vertices={endpoints}")


if __name__ == "__main__":
    main()
