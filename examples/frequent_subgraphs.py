"""Frequent subgraph mining on a labeled co-authorship-style network.

The scenario from the paper's FSM evaluation (§5.1): mine all patterns
whose minimum image-based (MNI) support clears a threshold, watch how the
frequent set shrinks as the threshold rises, and see the effect of the
transparent graph-reduction optimization (§4.3).

Run:  python examples/frequent_subgraphs.py
"""

from repro import FractalContext
from repro.apps import fsm
from repro.graph import powerlaw_graph


def main() -> None:
    # A co-authorship-style network: heavy-tailed degrees, few communities
    # of research fields (labels).
    graph = powerlaw_graph(n=220, attach=4, n_labels=4, seed=7, name="coauth")
    print(f"input: {graph}")

    for min_support in (30, 20, 12):
        result = fsm(
            FractalContext().from_graph(graph),
            min_support=min_support,
            max_edges=3,
        )
        print(
            f"\nsupport >= {min_support}: {len(result.frequent)} frequent "
            f"patterns in {result.rounds} rounds "
            f"({result.total_simulated_seconds():.2f}s simulated)"
        )
        for pattern in result.patterns[:6]:
            print(
                f"  {pattern.n_edges}-edge pattern labels="
                f"{pattern.vertex_labels} support={result.support_of(pattern)}"
            )

    # Transparent graph reduction: after the bootstrap round, edges whose
    # single-edge pattern is infrequent can never participate in a
    # frequent subgraph, so the engine drops them — same result set,
    # fewer extension tests.
    plain = fsm(FractalContext().from_graph(graph), min_support=20, max_edges=3)
    reduced = fsm(
        FractalContext().from_graph(graph),
        min_support=20,
        max_edges=3,
        reduce_input=True,
    )
    ec_plain = sum(r.metrics.extension_tests for r in plain.reports)
    ec_reduced = sum(r.metrics.extension_tests for r in reduced.reports)
    assert {p.canonical_code() for p in plain.frequent} == {
        p.canonical_code() for p in reduced.frequent
    }
    print(
        f"\ngraph reduction: extension cost {ec_plain} -> {ec_reduced} "
        f"({1 - ec_reduced / ec_plain:.0%} saved), identical results"
    )


if __name__ == "__main__":
    main()
