"""Quickstart: the Fractal API in five minutes.

Builds a small labeled graph, then walks through the core workflow
operators — expand, filter, aggregate, explore — and the simulated
distributed engine with hierarchical work stealing.

Run:  python examples/quickstart.py
"""

from repro import ClusterConfig, FractalContext, Pattern
from repro.graph import erdos_renyi_graph


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Create a context and a fractal graph (paper Figure 3).
    # ------------------------------------------------------------------
    fc = FractalContext()
    graph = erdos_renyi_graph(60, 180, n_labels=3, seed=42)
    fg = fc.from_graph(graph)
    print(f"input graph: {graph}")

    # ------------------------------------------------------------------
    # 2. Vertex-induced enumeration: connected induced subgraphs.
    # ------------------------------------------------------------------
    n3 = fg.vfractoid().expand(3).count()
    print(f"connected induced 3-vertex subgraphs: {n3}")

    # ------------------------------------------------------------------
    # 3. Cliques via a local filter (paper Listing 2, three lines).
    # ------------------------------------------------------------------
    triangles = (
        fg.vfractoid()
        .expand(1)
        .filter(lambda s, c: s.edges_added_last() == s.n_vertices - 1)
        .explore(3)
        .count()
    )
    print(f"triangles: {triangles}")

    # ------------------------------------------------------------------
    # 4. Motif counting via aggregation (paper Listing 1).
    # ------------------------------------------------------------------
    census = (
        fg.vfractoid()
        .expand(3)
        .aggregate(
            "motifs",
            key_fn=lambda s, c: s.pattern(),
            value_fn=lambda s, c: 1,
            reduce_fn=lambda a, b: a + b,
        )
        .aggregation("motifs")
    )
    print("3-vertex motif census (top 5 patterns):")
    for pattern, count in sorted(census.items(), key=lambda kv: -kv[1])[:5]:
        print(f"  labels={pattern.vertex_labels} edges={pattern.edges}: {count}")

    # ------------------------------------------------------------------
    # 5. Pattern-induced querying (paper Listing 5).
    # ------------------------------------------------------------------
    square = Pattern.from_edge_list(
        [(0, 1), (1, 2), (2, 3), (3, 0)],
        vertex_labels=[0, 0, 0, 0],
    )
    matches = fc.from_graph(graph).pfractoid(square).expand(4).count()
    print(f"label-0 squares: {matches}")

    # ------------------------------------------------------------------
    # 6. The simulated distributed engine: 2 workers x 4 cores with
    #    hierarchical work stealing (paper §4.2).
    # ------------------------------------------------------------------
    cluster = ClusterConfig(workers=2, cores_per_worker=4)
    fc2 = FractalContext(engine=cluster)
    report = (
        fc2.from_graph(graph)
        .vfractoid()
        .expand(1)
        .filter(lambda s, c: s.edges_added_last() == s.n_vertices - 1)
        .explore(3)
        .execute(collect="count")
    )
    print(
        f"cluster run: {report.result_count} triangles, "
        f"{report.total_seconds:.3f}s simulated "
        f"({report.metrics.steals_internal} internal / "
        f"{report.metrics.steals_external} external steals, "
        f"EC={report.metrics.extension_tests})"
    )


if __name__ == "__main__":
    main()
