"""Motif census of a biological-style interaction network.

Motif profiling (the paper's bioinformatics motivation, §2.2): count all
k-vertex connected induced subgraph shapes, compare their frequency
profile between a real-like network and a degree-matched random control —
the classic way network motifs are identified.

Run:  python examples/motif_census_bio.py
"""

from repro import FractalContext
from repro.apps import motif_counts_ignoring_labels, motifs
from repro.graph import erdos_renyi_graph, powerlaw_graph


def census(graph, k):
    counts = motifs(FractalContext().from_graph(graph), k)
    return motif_counts_ignoring_labels(counts)


def shape_name(pattern):
    k, m = pattern.n_vertices, pattern.n_edges
    names = {
        (3, 2): "path",
        (3, 3): "triangle",
        (4, 3): "tree",
        (4, 4): "cycle/tadpole",
        (4, 5): "diamond",
        (4, 6): "4-clique",
    }
    return names.get((k, m), f"{k}v/{m}e")


def main() -> None:
    # Protein-interaction-style network: heavy-tailed, locally clustered.
    bio = powerlaw_graph(n=200, attach=4, seed=3, name="ppi-like")
    # Degree-comparable random control.
    control = erdos_renyi_graph(bio.n_vertices, bio.n_edges, seed=3)
    print(f"network: {bio}  |  control: {control}")

    for k in (3, 4):
        bio_census = census(bio, k)
        control_census = census(control, k)
        total_bio = sum(bio_census.values())
        total_control = sum(control_census.values())
        print(f"\n{k}-vertex motif profile (share in network vs control):")
        shapes = sorted(
            set(bio_census) | set(control_census),
            key=lambda p: (p.n_edges, p.canonical_code()),
        )
        for pattern in shapes:
            share_bio = bio_census.get(pattern, 0) / total_bio
            share_control = control_census.get(pattern, 0) / max(1, total_control)
            enrichment = share_bio / share_control if share_control else float("inf")
            print(
                f"  {shape_name(pattern):14s} "
                f"network={share_bio:7.2%}  control={share_control:7.2%}  "
                f"enrichment={enrichment:5.2f}x"
            )

    # Preferential attachment produces far more triangles/cliques than the
    # ER control — the motif signal this analysis exists to surface.
    tri_bio = census(bio, 3)
    tri_control = census(control, 3)
    triangle = next(p for p in tri_bio if p.n_edges == 3)
    assert tri_bio[triangle] > tri_control.get(triangle, 0)
    print("\ntriangle enrichment confirmed (clustered network vs ER control)")


if __name__ == "__main__":
    main()
