"""Graphlet degree vectors: role discovery in a small-world network.

Uses the GDV extension (Przulj-style graphlet orbit counting built on the
Fractal enumeration machinery) to tell structurally different vertices
apart — hubs, bridges and rim vertices have distinct orbit signatures
even when raw degrees look similar.

Run:  python examples/graphlet_profiles.py
"""

from repro import FractalContext
from repro.apps import gdv_similarity, graphlet_degree_vectors
from repro.graph import watts_strogatz_graph


def main() -> None:
    graph = watts_strogatz_graph(60, 6, 0.08, seed=12, name="small-world")
    print(f"input: {graph}")

    gdv = graphlet_degree_vectors(FractalContext().from_graph(graph), 4)

    # Summarize each vertex by its richest orbits.
    def signature(vector, top=3):
        ranked = sorted(vector.items(), key=lambda kv: -kv[1])[:top]
        return ", ".join(
            f"{pattern.n_vertices}v/{pattern.n_edges}e#o{orbit}x{count}"
            for (pattern, orbit), count in ranked
        )

    degrees = {v: graph.degree(v) for v in graph.vertices()}
    busiest = sorted(gdv, key=lambda v: -sum(gdv[v].values()))[:5]
    print("\nvertices with the richest 4-graphlet participation:")
    for v in busiest:
        print(
            f"  v{v} (degree {degrees[v]}): "
            f"{sum(gdv[v].values())} graphlets | {signature(gdv[v])}"
        )

    # Vertices on the regular rim have near-identical signatures; compare
    # a rim pair against a rim-vs-busy pair.
    rim = [v for v in gdv if degrees[v] == 6][:2]
    if len(rim) == 2 and busiest:
        same = gdv_similarity(gdv[rim[0]], gdv[rim[1]])
        different = gdv_similarity(gdv[rim[0]], gdv[busiest[0]])
        print(
            f"\nGDV similarity: rim-vs-rim {same:.3f}  "
            f"rim-vs-hub {different:.3f}"
        )
        assert same >= different


if __name__ == "__main__":
    main()
