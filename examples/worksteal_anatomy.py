"""Anatomy of hierarchical work stealing on a skewed graph.

Reproduces the story of the paper's §4.2 on one screen: enumerate
4-cliques over a heavy-tailed graph on a simulated 2x8-core cluster and
compare the four load-balancing configurations — no stealing, internal
only, external only, and the full hierarchical strategy.

Run:  python examples/worksteal_anatomy.py
"""

from repro import ClusterConfig, FractalContext
from repro.apps import cliques_fractoid
from repro.graph import powerlaw_graph
from repro.harness import print_table


def run(graph, ws_internal, ws_external):
    config = ClusterConfig(
        workers=2,
        cores_per_worker=8,
        ws_internal=ws_internal,
        ws_external=ws_external,
        include_setup_overhead=False,
    )
    report = cliques_fractoid(
        FractalContext(engine=config).from_graph(graph), 4
    ).execute(collect="count")
    step = report.steps[-1].cluster
    finishes = sorted(core.finish_units for core in step.cores)
    mean_finish = sum(finishes) / len(finishes)
    return {
        "count": report.result_count,
        "makespan_s": report.simulated_seconds,
        "imbalance": finishes[-1] / mean_finish,
        "ws_int": report.metrics.steals_internal,
        "ws_ext": report.metrics.steals_external,
        "messages": report.metrics.steal_messages,
    }


def main() -> None:
    graph = powerlaw_graph(n=250, attach=6, seed=11, name="skewed")
    print(f"input: {graph} (max degree {max(graph.degree(v) for v in graph.vertices())})")

    configurations = [
        ("1.Disabled", False, False),
        ("2.Internal", True, False),
        ("3.External", False, True),
        ("4.Internal+External", True, True),
    ]
    rows = []
    results = {}
    for name, ws_int, ws_ext in configurations:
        outcome = run(graph, ws_int, ws_ext)
        results[name] = outcome
        rows.append(
            (
                name,
                f"{outcome['makespan_s']:.2f}s",
                f"{outcome['imbalance']:.2f}",
                outcome["ws_int"],
                outcome["ws_ext"],
                outcome["messages"],
            )
        )
    print_table(
        ["configuration", "makespan", "imbalance", "WSint", "WSext", "msgs"],
        rows,
        title="4-clique listing under the four balancing strategies",
    )

    counts = {r["count"] for r in results.values()}
    assert len(counts) == 1, "stealing must never change results"
    best = results["4.Internal+External"]["makespan_s"]
    worst = results["1.Disabled"]["makespan_s"]
    print(
        f"\nhierarchical stealing cut the makespan {worst / best:.2f}x "
        f"with identical results ({counts.pop()} cliques)"
    )


if __name__ == "__main__":
    main()
