"""Tests for graphlet degree vectors."""

import pytest

from repro import FractalContext
from repro.apps import (
    gdv_similarity,
    graphlet_degree_vectors,
    motifs,
)
from repro.graph import complete_graph, erdos_renyi_graph, path_graph, star_graph


class TestGraphletDegreeVectors:
    def test_star_orbits(self):
        # Star with 3 leaves, k=3 graphlets: every graphlet is a path
        # through the hub.  The hub sits at the path center C(3,2)=3
        # times; each leaf at a path end twice.
        star = star_graph(3)
        gdv = graphlet_degree_vectors(FractalContext().from_graph(star), 3)
        hub_vector = gdv[0]
        (pattern, orbit), = [
            key for key, count in hub_vector.items() if count == 3
        ]
        assert pattern.n_edges == 2  # the path
        for leaf in (1, 2, 3):
            assert sum(gdv[leaf].values()) == 2

    def test_path_center_vs_end(self):
        graph = path_graph(3)
        gdv = graphlet_degree_vectors(FractalContext().from_graph(graph), 3)
        # One graphlet: the path itself.  Center and ends get different
        # orbits of the same pattern.
        center_key, = gdv[1].keys()
        end_key, = gdv[0].keys()
        assert center_key[0] == end_key[0]  # same pattern
        assert center_key[1] != end_key[1]  # different orbit

    def test_clique_single_orbit(self):
        k4 = complete_graph(4)
        gdv = graphlet_degree_vectors(FractalContext().from_graph(k4), 3)
        # Triangles only; all positions share one orbit; each vertex is in
        # C(3,2) = 3 of the 4 triangles.
        for v in range(4):
            (key, count), = gdv[v].items()
            assert count == 3
            assert key[0].is_clique()

    def test_counts_consistent_with_motif_census(self):
        """Sum over vertices per (pattern, orbit) = instances x orbit size."""
        graph = erdos_renyi_graph(20, 50, seed=6)
        fg = FractalContext().from_graph(graph)
        gdv = graphlet_degree_vectors(fg, 3)
        census = motifs(FractalContext().from_graph(graph), 3)
        census_by_code = {p.canonical_code(): c for p, c in census.items()}

        totals = {}
        for vector in gdv.values():
            for (pattern, orbit), count in vector.items():
                key = (pattern.canonical_code(), orbit)
                totals[key] = totals.get(key, 0) + count
        for (code, orbit), total in totals.items():
            pattern = next(
                p for p in census if p.canonical_code() == code
            )
            orbit_size = sum(
                1 for o in pattern.canonical_position_orbits() if o == orbit
            )
            assert total == census_by_code[code] * orbit_size

    def test_validates_k(self):
        fg = FractalContext().from_graph(path_graph(3))
        with pytest.raises(ValueError):
            graphlet_degree_vectors(fg, 0)

    def test_isolated_vertices_absent(self):
        from repro.graph import GraphBuilder

        builder = GraphBuilder()
        builder.add_vertices(3)
        builder.add_edge(0, 1)
        graph = builder.build()
        gdv = graphlet_degree_vectors(FractalContext().from_graph(graph), 2)
        assert 2 not in gdv  # the isolated vertex joins no 2-graphlet


class TestGDVSimilarity:
    def test_identical_vectors(self):
        graph = erdos_renyi_graph(15, 35, seed=7)
        gdv = graphlet_degree_vectors(FractalContext().from_graph(graph), 3)
        v = next(iter(gdv))
        assert gdv_similarity(gdv[v], gdv[v]) == pytest.approx(1.0)

    def test_empty_vectors(self):
        assert gdv_similarity({}, {}) == 1.0

    def test_symmetry(self):
        graph = erdos_renyi_graph(15, 35, seed=7)
        gdv = graphlet_degree_vectors(FractalContext().from_graph(graph), 3)
        vertices = list(gdv)
        a, b = vertices[0], vertices[1]
        assert gdv_similarity(gdv[a], gdv[b]) == pytest.approx(
            gdv_similarity(gdv[b], gdv[a])
        )

    def test_structural_twins_more_similar(self):
        # In a star, two leaves are structurally identical; leaf-vs-hub
        # similarity must be lower.
        star = star_graph(4)
        gdv = graphlet_degree_vectors(FractalContext().from_graph(star), 3)
        leaf_leaf = gdv_similarity(gdv[1], gdv[2])
        leaf_hub = gdv_similarity(gdv[1], gdv[0])
        assert leaf_leaf > leaf_hub
        assert leaf_leaf == pytest.approx(1.0)

    def test_bounded(self):
        graph = erdos_renyi_graph(15, 35, seed=8)
        gdv = graphlet_degree_vectors(FractalContext().from_graph(graph), 3)
        vertices = list(gdv)
        for a in vertices[:5]:
            for b in vertices[:5]:
                s = gdv_similarity(gdv[a], gdv[b])
                assert 0.0 <= s <= 1.0
