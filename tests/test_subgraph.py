"""Tests for the Subgraph stack structure."""

import pytest

from repro.core import Subgraph
from repro.pattern import PatternInterner


@pytest.fixture
def subgraph(labeled_graph):
    return Subgraph(labeled_graph, PatternInterner())


class TestStackSemantics:
    def test_push_vertex(self, subgraph, labeled_graph):
        subgraph.push_vertex(0, [])
        eid = labeled_graph.edge_between(0, 1)
        subgraph.push_vertex(1, [eid])
        assert subgraph.vertices == [0, 1]
        assert subgraph.edges == [eid]
        assert subgraph.n_vertices == 2
        assert subgraph.n_edges == 1
        assert subgraph.contains_vertex(0)
        assert not subgraph.contains_vertex(2)

    def test_pop_restores_state(self, subgraph, labeled_graph):
        subgraph.push_vertex(0, [])
        eid = labeled_graph.edge_between(0, 1)
        subgraph.push_vertex(1, [eid])
        subgraph.pop()
        assert subgraph.vertices == [0]
        assert subgraph.edges == []
        assert not subgraph.contains_vertex(1)
        subgraph.pop()
        assert subgraph.n_vertices == 0

    def test_push_edge_adds_endpoints(self, subgraph):
        subgraph.push_edge(0)  # edge (0, 1)
        assert subgraph.vertices == [0, 1]
        assert subgraph.edges == [0]
        subgraph.push_edge(1)  # edge (1, 2): only vertex 2 is new
        assert subgraph.vertices == [0, 1, 2]
        subgraph.pop()
        assert subgraph.vertices == [0, 1]
        assert 1 not in subgraph.edge_set

    def test_clear(self, subgraph):
        subgraph.push_edge(0)
        subgraph.clear()
        assert subgraph.n_vertices == 0
        assert subgraph.n_edges == 0
        assert not subgraph.vertex_set
        assert not subgraph.edge_set

    def test_depth_and_last_accessors(self, subgraph, labeled_graph):
        subgraph.push_vertex(0, [])
        eid = labeled_graph.edge_between(0, 1)
        subgraph.push_vertex(1, [eid])
        assert subgraph.depth == 2
        assert subgraph.last_vertex() == 1
        assert subgraph.last_edge() == eid
        assert subgraph.edges_added_last() == 1

    def test_edges_added_last_empty(self, subgraph):
        assert subgraph.edges_added_last() == 0


class TestDerivedViews:
    def test_vertex_labels(self, subgraph):
        subgraph.push_vertex(0, [])
        subgraph.push_vertex(3, [])
        assert subgraph.vertex_labels() == (1, 2)

    def test_keywords_union(self, subgraph, labeled_graph):
        subgraph.push_edge(0)  # edge (0,1) carries "edgeword"
        words = subgraph.keywords()
        assert {"alpha", "beta", "edgeword"} <= words

    def test_quotient(self, subgraph, labeled_graph):
        eid01 = labeled_graph.edge_between(0, 1)
        eid12 = labeled_graph.edge_between(1, 2)
        subgraph.push_vertex(1, [])
        subgraph.push_vertex(0, [eid01])
        subgraph.push_vertex(2, [eid12])
        labels, qedges = subgraph.quotient()
        assert labels == (2, 1, 1)
        assert qedges == ((0, 1, 7), (0, 2, 8))

    def test_pattern_identity_across_orders(self, labeled_graph):
        s1 = Subgraph(labeled_graph, PatternInterner())
        eid01 = labeled_graph.edge_between(0, 1)
        s1.push_vertex(0, [])
        s1.push_vertex(1, [eid01])
        s2 = Subgraph(labeled_graph, s1.interner)
        s2.push_vertex(1, [])
        s2.push_vertex(0, [eid01])
        assert s1.pattern() is s2.pattern()

    def test_pattern_with_positions(self, labeled_graph):
        s = Subgraph(labeled_graph, PatternInterner())
        eid01 = labeled_graph.edge_between(0, 1)
        s.push_vertex(0, [])
        s.push_vertex(1, [eid01])
        pattern, positions = s.pattern_with_positions()
        assert pattern.n_vertices == 2
        assert sorted(positions) == [0, 1]

    def test_freeze(self, subgraph):
        subgraph.push_edge(0)
        frozen = subgraph.freeze()
        subgraph.pop()
        assert frozen.vertices == (0, 1)
        assert frozen.edges == (0,)
        assert frozen.pattern is not None

    def test_frozen_equality_and_hash(self, subgraph):
        subgraph.push_edge(0)
        f1 = subgraph.freeze()
        f2 = subgraph.freeze()
        assert f1 == f2
        assert hash(f1) == hash(f2)
        subgraph.push_edge(1)
        f3 = subgraph.freeze()
        assert f1 != f3
