"""Tests for aggregation storage and MNI DomainSupport."""

from hypothesis import given, settings, strategies as st

from repro.core import AggregationStorage, AggregationView, DomainSupport


class TestAggregationStorage:
    def test_add_and_reduce(self):
        storage = AggregationStorage("s", lambda a, b: a + b)
        storage.add("x", 1)
        storage.add("x", 2)
        storage.add("y", 5)
        view = storage.finalize()
        assert view.get("x") == 3
        assert view.get("y") == 5
        assert len(view) == 2

    def test_merge(self):
        s1 = AggregationStorage("s", lambda a, b: a + b)
        s2 = AggregationStorage("s", lambda a, b: a + b)
        s1.add("x", 1)
        s2.add("x", 2)
        s2.add("z", 7)
        s1.merge(s2)
        view = s1.finalize()
        assert view.get("x") == 3
        assert view.get("z") == 7

    def test_final_filter(self):
        storage = AggregationStorage(
            "s", lambda a, b: a + b, agg_filter=lambda k, v: v >= 3
        )
        storage.add("x", 1)
        storage.add("x", 2)
        storage.add("y", 1)
        view = storage.finalize()
        assert "x" in view
        assert "y" not in view

    def test_len(self):
        storage = AggregationStorage("s", lambda a, b: a + b)
        storage.add("x", 1)
        assert len(storage) == 1


class TestAggregationView:
    def test_read_interface(self):
        view = AggregationView({"a": 1, "b": 2})
        assert view.contains("a")
        assert "b" in view
        assert view.get("c", 9) == 9
        assert set(view.keys()) == {"a", "b"}
        assert dict(view.items()) == {"a": 1, "b": 2}
        assert view.to_dict() == {"a": 1, "b": 2}
        assert sorted(view) == ["a", "b"]

    def test_to_dict_is_copy(self):
        view = AggregationView({"a": 1})
        copy = view.to_dict()
        copy["a"] = 99
        assert view.get("a") == 1


class TestDomainSupport:
    def test_single_embedding(self):
        support = DomainSupport(2, n_positions=2)
        support.add_embedding([10, 11], [0, 1])
        assert support.support == 1
        assert not support.has_enough_support()

    def test_support_is_min_over_slots(self):
        support = DomainSupport(3, n_positions=2)
        support.add_embedding([1, 2], [0, 1])
        support.add_embedding([1, 3], [0, 1])
        support.add_embedding([1, 4], [0, 1])
        # Slot 0 saw only vertex 1; slot 1 saw three vertices.
        assert support.domain_sizes() == (1, 3)
        assert support.support == 1

    def test_orbit_sharing_via_slots(self):
        # Automorphic positions share a slot: both endpoints of an edge
        # feed one domain.
        support = DomainSupport(2, n_positions=1)
        support.add_embedding([5, 6], [0, 0])
        assert support.support == 2
        assert support.has_enough_support()

    def test_aggregate_unions(self):
        s1 = DomainSupport(2, n_positions=2)
        s1.add_embedding([1, 2], [0, 1])
        s2 = DomainSupport(2, n_positions=2)
        s2.add_embedding([3, 4], [0, 1])
        s1.aggregate(s2)
        assert s1.domain_sizes() == (2, 2)
        assert s1.has_enough_support()

    def test_aggregate_returns_self(self):
        s1 = DomainSupport(1, n_positions=1)
        s2 = DomainSupport(1, n_positions=1)
        assert s1.aggregate(s2) is s1

    def test_capped_mode_keeps_decision_exact(self):
        exact = DomainSupport(2, n_positions=1, exact=True)
        capped = DomainSupport(2, n_positions=1, exact=False)
        for v in range(10):
            exact.add_embedding([v], [0])
            capped.add_embedding([v], [0])
        assert exact.support == 10
        assert capped.has_enough_support()
        assert exact.has_enough_support()
        # Capped domains stop growing at the threshold.
        assert capped.domain_sizes()[0] <= 2

    def test_grows_slots_on_demand(self):
        support = DomainSupport(1)
        support.add_embedding([7, 8, 9], [0, 1, 2])
        assert len(support.domain_sizes()) == 3

    def test_empty_support_zero(self):
        assert DomainSupport(1).support == 0

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 20), st.integers(0, 2)),
            min_size=1,
            max_size=40,
        )
    )
    def test_anti_monotone_in_embeddings(self, pairs):
        """Adding embeddings never decreases the support."""
        support = DomainSupport(5, n_positions=3)
        last = 0
        for vertex, slot in pairs:
            support.add_embedding([vertex], [slot])
            current = min(support.domain_sizes())
            assert current >= 0
            assert support.support <= max(support.domain_sizes())
            last = current

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 30), min_size=1, max_size=30))
    def test_aggregate_equals_bulk_add(self, vertices):
        """Reducing singletons equals adding everything to one instance."""
        bulk = DomainSupport(3, n_positions=1)
        reduced = DomainSupport(3, n_positions=1)
        for v in vertices:
            bulk.add_embedding([v], [0])
            single = DomainSupport(3, n_positions=1)
            single.add_embedding([v], [0])
            reduced.aggregate(single)
        assert bulk.support == reduced.support
