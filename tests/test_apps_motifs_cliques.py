"""Tests for the motifs and cliques applications."""

import pytest

from repro import FractalContext
from repro.apps import (
    KClistStrategy,
    cliques,
    cliques_fractoid,
    cliques_optimized_fractoid,
    count_cliques,
    degeneracy_order,
    motif_counts_ignoring_labels,
    motifs,
)
from repro.graph import complete_graph, cycle_graph, erdos_renyi_graph
from repro.pattern import PatternInterner
from repro.runtime import Metrics

from conftest import brute_cliques, brute_motif_census


class TestMotifs:
    def test_census_matches_brute_force(self):
        graph = erdos_renyi_graph(25, 60, n_labels=3, seed=4)
        fg = FractalContext().from_graph(graph)
        census = motifs(fg, 3)
        expected = brute_motif_census(graph, 3)
        assert {p.canonical_code(): c for p, c in census.items()} == expected

    def test_k4_single_motif(self):
        fg = FractalContext().from_graph(complete_graph(4))
        census = motifs(fg, 4)
        assert len(census) == 1
        (pattern, count), = census.items()
        assert pattern.is_clique()
        assert count == 1

    def test_cycle_motifs(self):
        fg = FractalContext().from_graph(cycle_graph(5))
        census = motifs(fg, 3)
        # Only paths of 3 vertices exist in a C5.
        assert sum(census.values()) == 5
        assert len(census) == 1

    def test_k_validation(self):
        fg = FractalContext().from_graph(complete_graph(3))
        with pytest.raises(ValueError):
            motifs(fg, 0)

    def test_label_collapse(self):
        graph = erdos_renyi_graph(25, 60, n_labels=3, seed=4)
        fg = FractalContext().from_graph(graph)
        labeled = motifs(fg, 3)
        collapsed = motif_counts_ignoring_labels(labeled)
        assert sum(collapsed.values()) == sum(labeled.values())
        assert len(collapsed) <= len(labeled)
        assert all(
            set(p.vertex_labels) == {0} for p in collapsed
        )


class TestCliques:
    @pytest.mark.parametrize("k", [3, 4, 5])
    def test_counts_match_brute_force(self, k):
        graph = erdos_renyi_graph(25, 110, seed=5)
        fg = FractalContext().from_graph(graph)
        assert count_cliques(fg, k) == brute_cliques(graph, k)

    def test_listing_returns_cliques(self):
        graph = erdos_renyi_graph(20, 80, seed=6)
        fg = FractalContext().from_graph(graph)
        for result in cliques(fg, 3):
            a, b, c = result.vertices
            assert graph.are_adjacent(a, b)
            assert graph.are_adjacent(b, c)
            assert graph.are_adjacent(a, c)

    def test_k_validation(self):
        fg = FractalContext().from_graph(complete_graph(3))
        with pytest.raises(ValueError):
            cliques_fractoid(fg, 0)


class TestDegeneracyOrder:
    def test_is_permutation(self):
        graph = erdos_renyi_graph(30, 70, seed=7)
        rank = degeneracy_order(graph)
        assert sorted(rank) == list(range(30))

    def test_clique_ordering_valid(self):
        graph = complete_graph(5)
        rank = degeneracy_order(graph)
        assert sorted(rank) == list(range(5))

    def test_empty_graph(self):
        from repro.graph import GraphBuilder

        graph = GraphBuilder().build()
        assert degeneracy_order(graph) == []


class TestKClist:
    @pytest.mark.parametrize("k", [3, 4, 5])
    def test_matches_generic_implementation(self, k):
        graph = erdos_renyi_graph(25, 110, seed=5)
        fg = FractalContext().from_graph(graph)
        generic = count_cliques(fg, k)
        optimized = cliques_optimized_fractoid(
            FractalContext().from_graph(graph), k
        ).count()
        assert optimized == generic

    def test_no_filter_needed(self):
        # Every enumerated subgraph of the KClist strategy is a clique.
        graph = erdos_renyi_graph(20, 80, seed=6)
        fg = FractalContext().from_graph(graph)
        for result in cliques_optimized_fractoid(fg, 3).subgraphs():
            assert len(result.edges) == 3

    def test_lower_extension_cost_than_generic(self):
        graph = erdos_renyi_graph(40, 250, seed=8)
        generic = cliques_fractoid(
            FractalContext().from_graph(graph), 4
        ).execute(collect="count")
        optimized = cliques_optimized_fractoid(
            FractalContext().from_graph(graph), 4
        ).execute(collect="count")
        assert optimized.result_count == generic.result_count
        assert (
            optimized.metrics.extension_tests < generic.metrics.extension_tests
        )

    def test_strategy_reset(self):
        graph = erdos_renyi_graph(15, 40, seed=9)
        strategy = KClistStrategy(graph, Metrics(), PatternInterner())
        subgraph = strategy.make_subgraph()
        strategy.push(subgraph, 0)
        strategy.reset_state()
        subgraph.clear()
        # After a reset the strategy accepts a fresh enumeration.
        assert strategy.extensions(subgraph) == list(graph.vertices())

    def test_cluster_engine_compatible(self):
        from repro import ClusterConfig

        graph = erdos_renyi_graph(25, 110, seed=5)
        config = ClusterConfig(workers=2, cores_per_worker=2)
        count = cliques_optimized_fractoid(
            FractalContext(engine=config).from_graph(graph), 3
        ).count()
        assert count == brute_cliques(graph, 3)
