"""Steal policies and the event-driven scheduler.

Three invariants guard this subsystem:

1. **Policy transparency** — chunked stealing (``"half"``,
   ``"chunk:N"``) moves work between cores but never changes what is
   mined: result multisets and finalized aggregation views are
   identical across policies, under every work-stealing configuration
   and fault schedule.
2. **Exact replay** — the event-driven scheduler with the default
   ``"one"`` policy is a drop-in replacement for the legacy polling
   loop: per-core clocks, per-core steal counts, step totals and
   simulated makespans are *byte-identical*, including under injected
   faults (the parked-core collapse replays every virtual failed poll).
3. **Setup metering** — level-0 root enumeration is cluster setup, not
   core 0's work: its probes are metered engine-side, step totals are
   unchanged, and core 0's per-core counters stay clean.
"""

from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro import ClusterConfig, FractalContext, Pattern
from repro.graph import erdos_renyi_graph, powerlaw_graph
from repro.runtime.cluster import ClusterEngine, _parse_steal_policy
from repro.runtime.faults import (
    CoreFailure,
    FaultPlan,
    MessageFaults,
    StragglerWindow,
)

# Counters introduced by the event scheduler; excluded from the
# poll-vs-event fingerprint because the two schedulers account their own
# bookkeeping differently (everything else must match exactly).
SCHEDULER_COUNTERS = (
    "scheduler_events",
    "scheduler_requeues",
    "cores_parked",
    "wake_events",
    "parked_units",
    "victim_scan_steps",
    "steal_chunk_extensions",
)

WS_CONFIGS = [(False, False), (True, False), (False, True), (True, True)]
POLICIES = ["one", "half", "chunk:3", "adaptive"]

FAULT_PLAN = FaultPlan(
    core_failures=(CoreFailure(2, 80.0),),
    stragglers=(StragglerWindow(3, 0.0, 500.0, 3.0),),
    message_faults=MessageFaults(drop=0.2, duplicate=0.1, delay=0.2, delay_units=4.0),
    seed=7,
)


def _config(ws_int, ws_ext, policy="one", scheduler="event", fault_plan=None):
    return ClusterConfig(
        workers=2,
        cores_per_worker=3,
        ws_internal=ws_int,
        ws_external=ws_ext,
        steal_policy=policy,
        scheduler=scheduler,
        fault_plan=fault_plan,
    )


def _clique_fractoid(graph, config, k=3):
    fg = FractalContext(engine=config).from_graph(graph)
    return (
        fg.vfractoid()
        .expand(1)
        .filter(lambda s, c: s.edges_added_last() == s.n_vertices - 1)
        .explore(k)
    )


def _motif_census(graph, config):
    fg = FractalContext(engine=config).from_graph(graph)
    view = (
        fg.vfractoid()
        .expand(3)
        .aggregate(
            "motifs",
            key_fn=lambda s, c: s.pattern(),
            value_fn=lambda s, c: 1,
            reduce_fn=lambda a, b: a + b,
        )
        .aggregation("motifs")
    )
    return {k.canonical_code(): v for k, v in view.items()}


def _result_multiset(graph, config):
    report = _clique_fractoid(graph, config).execute(collect="subgraphs")
    return Counter((s.vertices, s.edges) for s in report.subgraphs)


def _fingerprint(report):
    """Everything the paper's simulation publishes, minus scheduler meta."""
    totals = report.metrics.snapshot()
    for key in SCHEDULER_COUNTERS:
        totals.pop(key)
    cores = tuple(
        (
            core.core_id,
            core.finish_units,
            core.busy_units,
            core.steal_units,
            core.steals_internal,
            core.steals_external,
            core.failed,
        )
        for step in report.steps
        if step.cluster is not None
        for core in step.cluster.cores
    )
    return (
        report.result_count,
        report.simulated_seconds,
        tuple(sorted(totals.items())),
        cores,
    )


class TestPolicyValidation:
    @pytest.mark.parametrize(
        "policy", ["bogus", "chunk:0", "chunk:-2", "chunk:", "chunk:x", "HALF", ""]
    )
    def test_invalid_policy_rejected(self, policy):
        with pytest.raises(ValueError, match="steal_policy"):
            ClusterConfig(workers=1, cores_per_worker=2, steal_policy=policy)

    @pytest.mark.parametrize(
        "policy", ["one", "half", "chunk:1", "chunk:64", "adaptive"]
    )
    def test_valid_policy_accepted(self, policy):
        ClusterConfig(workers=1, cores_per_worker=2, steal_policy=policy)

    def test_invalid_scheduler_rejected(self):
        with pytest.raises(ValueError, match="scheduler"):
            ClusterConfig(workers=1, cores_per_worker=2, scheduler="fibers")

    def test_parse(self):
        assert _parse_steal_policy("one") == 1
        assert _parse_steal_policy("half") == 0
        assert _parse_steal_policy("chunk:5") == 5
        assert _parse_steal_policy("adaptive") == -1

    def test_error_message_lists_adaptive(self):
        with pytest.raises(ValueError, match="adaptive"):
            _parse_steal_policy("bogus")

    @pytest.mark.parametrize(
        "links",
        [
            ((0, 0, 5.0),),  # self-link
            ((0, 9, 5.0),),  # worker out of range
            ((0, 1, -1.0),),  # negative latency
        ],
    )
    def test_invalid_link_latency_rejected(self, links):
        with pytest.raises(ValueError, match="link"):
            ClusterConfig(workers=2, cores_per_worker=2, link_latency=links)


class TestChunkSizing:
    def test_one_always_single(self):
        config = ClusterConfig(workers=1, cores_per_worker=2, steal_policy="one")
        assert [config.steal_chunk_size(r) for r in (1, 2, 5, 100)] == [1, 1, 1, 1]

    def test_half_takes_larger_half(self):
        config = ClusterConfig(workers=1, cores_per_worker=2, steal_policy="half")
        assert config.steal_chunk_size(1) == 1
        assert config.steal_chunk_size(2) == 1
        assert config.steal_chunk_size(5) == 3
        assert config.steal_chunk_size(8) == 4

    def test_chunk_leaves_victim_one(self):
        """Fixed chunks cap at remaining-1: the victim always keeps a unit
        of progress, which is what breaks the two-thief bounce livelock."""
        config = ClusterConfig(workers=1, cores_per_worker=2, steal_policy="chunk:4")
        assert config.steal_chunk_size(10) == 4
        assert config.steal_chunk_size(4) == 3
        assert config.steal_chunk_size(2) == 1
        assert config.steal_chunk_size(1) == 1


class TestPolicyTransparency:
    @pytest.mark.parametrize("policy", POLICIES[1:])
    @pytest.mark.parametrize("ws_int,ws_ext", WS_CONFIGS)
    def test_clique_multisets_match(self, ws_int, ws_ext, policy):
        graph = powerlaw_graph(70, attach=4, seed=5)
        base = _result_multiset(graph, _config(ws_int, ws_ext, "one"))
        assert _result_multiset(graph, _config(ws_int, ws_ext, policy)) == base

    @pytest.mark.parametrize("policy", POLICIES[1:])
    def test_aggregation_views_match(self, policy):
        graph = erdos_renyi_graph(40, 110, n_labels=3, seed=9)
        base = _motif_census(graph, _config(True, True, "one"))
        assert _motif_census(graph, _config(True, True, policy)) == base

    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("ws_int,ws_ext", WS_CONFIGS)
    def test_faulted_runs_mine_the_same(self, ws_int, ws_ext, policy):
        graph = powerlaw_graph(70, attach=4, seed=5)
        healthy = _result_multiset(graph, _config(ws_int, ws_ext, "one"))
        faulted = _result_multiset(
            graph, _config(ws_int, ws_ext, policy, fault_plan=FAULT_PLAN)
        )
        assert faulted == healthy

    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        policy=st.sampled_from(POLICIES),
        ws=st.sampled_from(WS_CONFIGS),
        faulted=st.booleans(),
    )
    def test_random_workloads(self, seed, policy, ws, faulted):
        graph = powerlaw_graph(50 + seed % 30, attach=3 + seed % 3, seed=seed)
        plan = (
            FaultPlan.from_seed(seed, workers=2, cores_per_worker=3)
            if faulted
            else None
        )
        base = _result_multiset(graph, _config(*ws, "one"))
        assert (
            _result_multiset(graph, _config(*ws, policy, fault_plan=plan)) == base
        )


class TestExactReplay:
    """scheduler="event" with policy "one" replays scheduler="poll" exactly."""

    @pytest.mark.parametrize("ws_int,ws_ext", WS_CONFIGS)
    @pytest.mark.parametrize(
        "fault",
        [None, "fail_at", "plan"],
        ids=["healthy", "fail_at", "fault_plan"],
    )
    def test_cliques_byte_identical(self, ws_int, ws_ext, fault):
        graph = powerlaw_graph(80, attach=4, seed=11)
        kwargs = {}
        if fault == "fail_at":
            kwargs["fail_at"] = {1: 50.0, 4: 120.0}
        elif fault == "plan":
            kwargs["fault_plan"] = FAULT_PLAN
        reports = {}
        for scheduler in ("event", "poll"):
            config = ClusterConfig(
                workers=2,
                cores_per_worker=3,
                ws_internal=ws_int,
                ws_external=ws_ext,
                scheduler=scheduler,
                **kwargs,
            )
            reports[scheduler] = _clique_fractoid(graph, config).execute(
                collect="count"
            )
        assert _fingerprint(reports["event"]) == _fingerprint(reports["poll"])

    def test_aggregation_byte_identical(self):
        graph = erdos_renyi_graph(40, 110, n_labels=3, seed=9)
        views = {}
        for scheduler in ("event", "poll"):
            views[scheduler] = _motif_census(
                graph, _config(True, True, scheduler=scheduler)
            )
        assert views["event"] == views["poll"]

    def test_event_pops_fewer_events(self):
        """Parking must eliminate the poll loop's busy-wait pops."""
        graph = powerlaw_graph(80, attach=4, seed=11)
        counts = {}
        for scheduler in ("event", "poll"):
            config = ClusterConfig(
                workers=2,
                cores_per_worker=3,
                ws_internal=False,
                ws_external=False,
                scheduler=scheduler,
            )
            report = _clique_fractoid(graph, config).execute(collect="count")
            counts[scheduler] = report.metrics.scheduler_events
        assert counts["event"] < counts["poll"]

    def test_parking_metered(self):
        graph = powerlaw_graph(80, attach=4, seed=11)
        report = _clique_fractoid(
            graph, _config(False, False)
        ).execute(collect="count")
        summary = report.scheduler_summary()
        assert summary["events"] > 0
        assert summary["parks"] > 0
        assert summary["parked_units"] > 0.0
        # With stealing disabled nothing publishes work to a parked core.
        assert summary["wake_events"] == 0


class TestRootMetering:
    """Level-0 enumeration is setup: engine-metered, core 0 stays clean.

    Pattern-induced strategies meter their level-0 probe (one extension
    test per graph vertex); before the fix that probe was silently
    charged to core 0's counters, skewing per-core load numbers."""

    def _fractoid(self, graph):
        pattern = Pattern([0, 0], [(0, 1, 0)])
        return FractalContext().from_graph(graph).pfractoid(pattern).expand(2)

    def test_core_zero_counters_clean(self):
        graph = erdos_renyi_graph(30, 80, seed=3)
        frac = self._fractoid(graph)
        context = frac.fractal_graph.context
        engine = ClusterEngine(ClusterConfig(workers=1, cores_per_worker=4))
        cores = engine._build_cores(
            graph, frac._strategy_factory, context.interner, {}
        )
        setup = engine._distribute_roots(cores, list(frac.primitives), None)
        # The probe happened — and was booked to setup, not core 0.
        assert setup.extension_tests == graph.n_vertices
        assert all(v == 0 for v in cores[0].metrics.snapshot().values())
        assert any(core.stack for core in cores)

    def test_step_totals_match_sequential(self):
        graph = erdos_renyi_graph(30, 80, seed=3)
        seq = self._fractoid(graph).execute(collect="count")
        clustered = self._fractoid(graph).execute(
            collect="count",
            engine=ClusterConfig(workers=2, cores_per_worker=3),
        )
        assert clustered.result_count == seq.result_count
        assert (
            clustered.metrics.extension_tests == seq.metrics.extension_tests
        )
        assert (
            clustered.metrics.subgraphs_enumerated
            == seq.metrics.subgraphs_enumerated
        )


class TestChunkAccounting:
    def test_chunk_extensions_counted(self):
        graph = powerlaw_graph(90, attach=5, seed=2)
        report = _clique_fractoid(graph, _config(True, True, "half")).execute(
            collect="count"
        )
        m = report.metrics
        steals = m.steals_internal + m.steals_external
        if steals:
            assert m.steal_chunk_extensions >= steals
            assert report.scheduler_summary()["mean_steal_chunk"] >= 1.0

    def test_chunking_reduces_steals(self):
        graph = powerlaw_graph(90, attach=5, seed=2)
        totals = {}
        for policy in ("one", "half"):
            report = _clique_fractoid(
                graph, _config(True, True, policy)
            ).execute(collect="count")
            totals[policy] = (
                report.metrics.steals_internal + report.metrics.steals_external
            )
        assert totals["half"] <= totals["one"]

    def test_per_core_reports_roll_up(self):
        graph = powerlaw_graph(90, attach=5, seed=2)
        report = _clique_fractoid(graph, _config(True, True, "half")).execute(
            collect="count"
        )
        step = report.steps[-1].cluster
        assert sum(c.steal_chunk_extensions for c in step.cores) == (
            step.metrics.steal_chunk_extensions
        )


# A skewed plan that makes the adaptive controller actually move: four
# persistent 6x stragglers keep the fast cores stealing all run long.
SKEW_PLAN = FaultPlan(
    stragglers=tuple(StragglerWindow(c, 0.0, 1e6, 6.0) for c in range(2)),
    seed=3,
)


class TestAdaptivePolicy:
    """``steal_policy="adaptive"`` mines exactly what ``"one"`` mines.

    The controller only moves clocks and steal traffic; result
    multisets, aggregation views and aggregate counts are identical to
    the fixed single-extension protocol — across work-stealing
    configurations, fault schedules and execution backends — and two
    adaptive runs replay byte-identically.
    """

    def test_chunk_size_outside_engine_is_one(self):
        # Without a live run there is no controller state to consult;
        # the config-level helper falls back to the safe single step.
        config = ClusterConfig(
            workers=1, cores_per_worker=2, steal_policy="adaptive"
        )
        assert [config.steal_chunk_size(r) for r in (1, 2, 5, 100)] == [1, 1, 1, 1]

    def test_aggregation_views_match_one(self):
        graph = erdos_renyi_graph(40, 110, n_labels=3, seed=9)
        base = _motif_census(graph, _config(True, True, "one"))
        assert _motif_census(graph, _config(True, True, "adaptive")) == base

    def test_counts_match_across_backends(self):
        """Sequential / simulator-adaptive / multiprocess agree exactly."""
        import multiprocessing

        from repro import MultiprocessConfig

        graph = erdos_renyi_graph(40, 110, n_labels=3, seed=9)
        seq_fc = FractalContext()
        seq = {
            k.canonical_code(): v
            for k, v in (
                seq_fc.from_graph(graph)
                .vfractoid()
                .expand(3)
                .aggregate(
                    "motifs",
                    key_fn=lambda s, c: s.pattern(),
                    value_fn=lambda s, c: 1,
                    reduce_fn=lambda a, b: a + b,
                )
                .aggregation("motifs")
            ).items()
        }
        adaptive = _motif_census(
            graph, _config(True, True, "adaptive", fault_plan=SKEW_PLAN)
        )
        assert adaptive == seq
        if "fork" in multiprocessing.get_all_start_methods():
            mp = _motif_census(graph, MultiprocessConfig(num_procs=2))
            assert mp == seq

    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        ws=st.sampled_from(WS_CONFIGS),
        faulted=st.booleans(),
    )
    def test_random_workloads_match_one(self, seed, ws, faulted):
        graph = powerlaw_graph(50 + seed % 30, attach=3 + seed % 3, seed=seed)
        plan = (
            FaultPlan.from_seed(seed, workers=2, cores_per_worker=3)
            if faulted
            else None
        )
        base = _result_multiset(graph, _config(*ws, "one", fault_plan=plan))
        assert (
            _result_multiset(graph, _config(*ws, "adaptive", fault_plan=plan))
            == base
        )

    def test_replay_determinism(self):
        """Two adaptive runs: identical clocks, counters and results."""
        graph = powerlaw_graph(90, attach=5, seed=2)

        def full_fingerprint():
            report = _clique_fractoid(
                graph, _config(True, True, "adaptive", fault_plan=SKEW_PLAN)
            ).execute(collect="count")
            cores = tuple(
                (core.core_id, core.finish_units, core.busy_units)
                for step in report.steps
                if step.cluster is not None
                for core in step.cluster.cores
            )
            return (
                report.result_count,
                report.simulated_seconds,
                tuple(sorted(report.metrics.snapshot().items())),
                cores,
            )

        assert full_fingerprint() == full_fingerprint()

    def test_controller_moves_on_skew(self):
        graph = powerlaw_graph(90, attach=5, seed=2)
        report = _clique_fractoid(
            graph, _config(True, True, "adaptive", fault_plan=SKEW_PLAN)
        ).execute(collect="count")
        m = report.metrics
        assert m.steal_degree_adjustments >= 1
        assert m.adaptive_steals >= 1
        summary = report.scheduler_summary()
        assert summary["steal_degree_adjustments"] == m.steal_degree_adjustments
        assert summary["adaptive_chunk_mean"] >= 1.0
        assert summary["victim_cost_skips"] == m.victim_cost_skips
        # Per-core reports roll the new counters up exactly.
        step = report.steps[-1].cluster
        assert sum(c.steal_degree_adjustments for c in step.cores) == (
            m.steal_degree_adjustments
        )
        assert sum(c.victim_cost_skips for c in step.cores) == (
            m.victim_cost_skips
        )

    def test_fixed_policies_keep_adaptive_counters_zero(self):
        """The controller is a no-op unless the policy asks for it."""
        graph = powerlaw_graph(90, attach=5, seed=2)
        report = _clique_fractoid(graph, _config(True, True, "half")).execute(
            collect="count"
        )
        m = report.metrics
        assert m.steal_degree_adjustments == 0
        assert m.victim_cost_skips == 0
        assert m.adaptive_steals == 0
        assert m.adaptive_chunk_extensions == 0
