"""Tests for Pattern construction, identity and orbits."""

import pytest

from repro import Pattern
from repro.graph import complete_graph
from repro.pattern import PatternInterner


class TestPatternConstruction:
    def test_from_edge_list(self):
        p = Pattern.from_edge_list([(0, 1), (1, 2)])
        assert p.n_vertices == 3
        assert p.n_edges == 2
        assert p.vertex_labels == (0, 0, 0)

    def test_normalizes_edge_orientation(self):
        p = Pattern([0, 0], [(1, 0, 5)])
        assert p.edges == ((0, 1, 5),)

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            Pattern([0], [(0, 0, 0)])

    def test_rejects_duplicate_edge(self):
        with pytest.raises(ValueError):
            Pattern([0, 0], [(0, 1, 0), (1, 0, 0)])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Pattern([0, 0], [(0, 5, 0)])

    def test_clique_and_single_vertex(self):
        k4 = Pattern.clique(4)
        assert k4.n_edges == 6
        assert k4.is_clique()
        single = Pattern.single_vertex(label=3)
        assert single.n_vertices == 1
        assert single.vertex_labels == (3,)

    def test_from_graph_and_to_graph_round_trip(self):
        g = complete_graph(4)
        p = Pattern.from_graph(g)
        g2 = p.to_graph()
        assert g2.n_vertices == 4
        assert g2.n_edges == 6
        assert Pattern.from_graph(g2) == p

    def test_connectivity(self):
        assert Pattern.from_edge_list([(0, 1), (1, 2)]).is_connected()
        assert not Pattern([0, 0, 0], [(0, 1, 0)]).is_connected()


class TestPatternIdentity:
    def test_isomorphic_patterns_equal(self):
        p1 = Pattern.from_edge_list([(0, 1), (1, 2), (2, 0), (2, 3)])
        p2 = Pattern.from_edge_list([(3, 2), (2, 1), (1, 3), (0, 1)])
        assert p1 == p2
        assert hash(p1) == hash(p2)

    def test_non_isomorphic_differ(self):
        triangle_tail = Pattern.from_edge_list([(0, 1), (1, 2), (2, 0), (2, 3)])
        path = Pattern.from_edge_list([(0, 1), (1, 2), (2, 3)])
        assert triangle_tail != path

    def test_labels_matter(self):
        p1 = Pattern([0, 1], [(0, 1, 0)])
        p2 = Pattern([0, 0], [(0, 1, 0)])
        assert p1 != p2

    def test_edge_labels_matter(self):
        p1 = Pattern([0, 0], [(0, 1, 0)])
        p2 = Pattern([0, 0], [(0, 1, 1)])
        assert p1 != p2

    def test_ordering_is_total(self):
        p1 = Pattern.clique(3)
        p2 = Pattern.from_edge_list([(0, 1), (1, 2)])
        assert (p1 < p2) != (p2 < p1)

    def test_neighborhood_and_degree(self):
        p = Pattern.from_edge_list([(0, 1), (0, 2)])
        assert p.degree(0) == 2
        assert p.degree(1) == 1
        assert p.are_adjacent(0, 1)
        assert not p.are_adjacent(1, 2)
        assert p.edge_label_between(0, 1) == 0
        assert p.edge_label_between(1, 2) is None


class TestOrbits:
    def test_clique_single_orbit(self):
        orbits = Pattern.clique(4).vertex_orbits()
        assert len(set(orbits)) == 1

    def test_path_orbits(self):
        # P3: endpoints are one orbit, the center another.
        orbits = Pattern.from_edge_list([(0, 1), (1, 2)]).vertex_orbits()
        assert orbits[0] == orbits[2]
        assert orbits[1] != orbits[0]

    def test_labeled_path_trivial_orbits(self):
        p = Pattern([0, 0, 1], [(0, 1, 0), (1, 2, 0)])
        assert len(set(p.vertex_orbits())) == 3

    def test_star_orbits(self):
        p = Pattern.from_edge_list([(0, 1), (0, 2), (0, 3)])
        orbits = p.vertex_orbits()
        assert orbits[1] == orbits[2] == orbits[3]
        assert orbits[0] != orbits[1]

    def test_canonical_position_orbits_align(self):
        p = Pattern.from_edge_list([(0, 1), (0, 2), (0, 3)])
        by_position = p.canonical_position_orbits()
        assert sorted(by_position) == sorted(p.vertex_orbits())

    def test_position_orbits_representative_invariant(self):
        # Separate interners (as in separate worker processes) may pick
        # different representatives for one isomorphism class; their
        # position -> orbit labelings must still agree or cross-process
        # DomainSupport merges would mix slots.
        pa, _ = PatternInterner().intern(
            (1, 0, 0, 0), ((0, 1, 0), (0, 2, 0), (0, 3, 0))
        )
        pb, _ = PatternInterner().intern(
            (0, 0, 0, 1), ((0, 3, 0), (1, 3, 0), (2, 3, 0))
        )
        assert pa == pb
        assert pa is not pb
        assert pa.canonical_position_orbits() == pb.canonical_position_orbits()


class TestPatternInterner:
    def test_cache_hit(self):
        interner = PatternInterner()
        key = ((0, 0, 0), ((0, 1, 0), (1, 2, 0)))
        p1, map1 = interner.intern(*key)
        p2, map2 = interner.intern(*key)
        assert p1 is p2
        assert map1 == map2
        assert interner.hits == 1
        assert interner.misses == 1

    def test_isomorphic_structures_share_instance(self):
        interner = PatternInterner()
        p1, _ = interner.intern((0, 0, 0), ((0, 1, 0), (1, 2, 0)))
        p2, _ = interner.intern((0, 0, 0), ((0, 2, 0), (1, 2, 0)))
        assert p1 is p2
        assert len(interner) == 2

    def test_mapping_points_to_canonical_positions(self):
        interner = PatternInterner()
        # Path a-b-c presented with the center at local index 2.
        pattern, mapping = interner.intern(
            (0, 0, 0), ((0, 2, 0), (1, 2, 0))
        )
        # The center vertex (local 2) must map to the same canonical
        # position as the center of the canonical path.
        center_position = mapping[2]
        orbit_of = pattern.canonical_position_orbits()
        endpoint_positions = [mapping[0], mapping[1]]
        assert orbit_of[endpoint_positions[0]] == orbit_of[endpoint_positions[1]]
        assert orbit_of[center_position] != orbit_of[endpoint_positions[0]]
