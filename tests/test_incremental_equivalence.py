"""Property tests: incremental extension maintenance ≡ from-scratch kernels.

The optimized :class:`VertexInducedStrategy` / :class:`EdgeInducedStrategy`
maintain their candidate maps incrementally across push/pop (with lazy
folding).  These tests drive them in lockstep with line-faithful
reconstructions of the from-scratch reference kernels over random graphs
and random DFS shapes — including branches where ``extensions`` is never
called before backtracking (the filter-killed shape the lazy fold
optimizes for) and prefixes installed via ``rebuild`` (stolen work) — and
require, at every node where both sides are queried:

* identical extension lists, and
* identical ``metrics.extension_tests`` deltas (the EC meter must keep
  the *logical* from-scratch semantics, paper §5's EC metric).

A separate test checks the memoized rank-compressed minimum-DFS-code
front-end against the raw branch-and-bound search.
"""

from __future__ import annotations

import random

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st

from repro.core.enumerator import (
    EdgeInducedStrategy,
    ExtensionStrategy,
    PatternInducedStrategy,
    VertexInducedStrategy,
)
from repro.graph.graph import GraphBuilder
from repro.pattern import dfscode
from repro.pattern.pattern import Pattern, PatternInterner
from repro.runtime.metrics import Metrics


# ----------------------------------------------------------------------
# Reference from-scratch kernels (the seed implementations)
# ----------------------------------------------------------------------
class ReferenceVertexStrategy(ExtensionStrategy):
    mode = "vertex"

    def extensions(self, subgraph):
        words = subgraph.vertices
        graph = self.graph
        if not words:
            return list(graph.vertices())
        k = len(words)
        suffmax = [0] * (k + 1)
        suffmax[k] = -1
        for i in range(k - 1, -1, -1):
            word = words[i]
            suffmax[i] = word if word > suffmax[i + 1] else suffmax[i + 1]
        first = words[0]
        in_subgraph = subgraph.vertex_set
        first_pos = {}
        tests = 0
        for i, w in enumerate(words):
            for u, _ in graph.neighborhood(w):
                tests += 1
                if u not in in_subgraph and u not in first_pos:
                    first_pos[u] = i
        self.metrics.extension_tests += tests
        result = [
            u for u, pos in first_pos.items() if u > first and u > suffmax[pos + 1]
        ]
        result.sort()
        self.metrics.extensions_generated += len(result)
        return result

    def push(self, subgraph, word):
        graph = self.graph
        in_subgraph = subgraph.vertex_set
        incident = [eid for u, eid in graph.neighborhood(word) if u in in_subgraph]
        self.metrics.adjacency_scans += graph.degree(word)
        subgraph.push_vertex(word, incident)


class ReferenceEdgeStrategy(ExtensionStrategy):
    mode = "edge"

    def extensions(self, subgraph):
        words = subgraph.edges
        graph = self.graph
        if not words:
            return list(graph.edges())
        k = len(words)
        suffmax = [0] * (k + 1)
        suffmax[k] = -1
        for i in range(k - 1, -1, -1):
            word = words[i]
            suffmax[i] = word if word > suffmax[i + 1] else suffmax[i + 1]
        first = words[0]
        in_subgraph = subgraph.edge_set
        first_pos = {}
        tests = 0
        for i, e in enumerate(words):
            for endpoint in graph.edge(e):
                for _, eid in graph.neighborhood(endpoint):
                    tests += 1
                    if eid not in in_subgraph and eid not in first_pos:
                        first_pos[eid] = i
        self.metrics.extension_tests += tests
        result = [
            e for e, pos in first_pos.items() if e > first and e > suffmax[pos + 1]
        ]
        result.sort()
        self.metrics.extensions_generated += len(result)
        return result

    def push(self, subgraph, word):
        subgraph.push_edge(word)


# ----------------------------------------------------------------------
# Random inputs
# ----------------------------------------------------------------------
@st.composite
def random_graphs(draw):
    """Small random labeled graph plus a PRNG seed for the DFS shape."""
    n = draw(st.integers(min_value=2, max_value=9))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    density = draw(st.floats(min_value=0.2, max_value=0.9))
    rng_seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    rng = random.Random(rng_seed)
    chosen = [e for e in possible if rng.random() < density]
    builder = GraphBuilder(name="prop")
    n_labels = draw(st.integers(min_value=1, max_value=3))
    for _ in range(n):
        builder.add_vertex(label=rng.randrange(n_labels))
    for u, v in chosen:
        builder.add_edge(u, v, label=rng.randrange(2))
    return builder.build(), rng_seed


def _lockstep(graph, incremental, reference, rng, depth_limit):
    """Random DFS on both strategies; compare extensions and EC deltas.

    With probability ~0.3 a node is treated as filter-killed: its subtree
    is abandoned without ever calling ``extensions`` — exercising the
    pops-without-fold path of the lazy scheme.
    """
    sub_inc = incremental.make_subgraph()
    sub_ref = reference.make_subgraph()
    incremental.reset_state()
    reference.reset_state()

    def expand(depth):
        before_inc = incremental.metrics.extension_tests
        before_ref = reference.metrics.extension_tests
        ext_inc = incremental.extensions(sub_inc)
        ext_ref = reference.extensions(sub_ref)
        assert ext_inc == ext_ref, (
            f"extension mismatch at prefix {sub_inc.vertices}/{sub_inc.edges}"
        )
        delta_inc = incremental.metrics.extension_tests - before_inc
        delta_ref = reference.metrics.extension_tests - before_ref
        assert delta_inc == delta_ref, (
            f"EC meter mismatch at prefix {sub_inc.vertices}/{sub_inc.edges}: "
            f"{delta_inc} != {delta_ref}"
        )
        if depth >= depth_limit:
            return
        for word in ext_inc:
            if rng.random() < 0.4:
                continue  # skip this child entirely
            incremental.push(sub_inc, word)
            reference.push(sub_ref, word)
            if rng.random() < 0.3:
                # "Filter-killed": backtrack without asking for extensions.
                pass
            else:
                expand(depth + 1)
            incremental.pop(sub_inc)
            reference.pop(sub_ref)

    expand(0)
    assert sub_inc.vertices == [] and sub_inc.edges == []


@settings(max_examples=60, deadline=None)
@given(random_graphs())
def test_vertex_incremental_matches_reference(data):
    graph, rng_seed = data
    interner = PatternInterner()
    incremental = VertexInducedStrategy(graph, Metrics(), interner)
    reference = ReferenceVertexStrategy(graph, Metrics(), interner)
    _lockstep(graph, incremental, reference, random.Random(rng_seed), depth_limit=4)


@settings(max_examples=40, deadline=None)
@given(random_graphs())
def test_edge_incremental_matches_reference(data):
    graph, rng_seed = data
    interner = PatternInterner()
    incremental = EdgeInducedStrategy(graph, Metrics(), interner)
    reference = ReferenceEdgeStrategy(graph, Metrics(), interner)
    _lockstep(graph, incremental, reference, random.Random(rng_seed), depth_limit=3)


@settings(max_examples=40, deadline=None)
@given(random_graphs())
def test_rebuild_stolen_prefix_matches_reference(data):
    """After rebuild() of a random valid prefix (stolen work), the
    incremental strategy must agree with a fresh from-scratch kernel —
    and continue to agree through a follow-up push/pop."""
    graph, rng_seed = data
    rng = random.Random(rng_seed)
    for cls, ref_cls in (
        (VertexInducedStrategy, ReferenceVertexStrategy),
        (EdgeInducedStrategy, ReferenceEdgeStrategy),
    ):
        interner = PatternInterner()
        incremental = cls(graph, Metrics(), interner)
        reference = ref_cls(graph, Metrics(), interner)
        sub_ref = reference.make_subgraph()

        # Grow a random canonical prefix with the reference kernel.
        prefix = []
        for _ in range(rng.randrange(1, 4)):
            candidates = reference.extensions(sub_ref)
            if not candidates:
                break
            word = rng.choice(candidates)
            reference.push(sub_ref, word)
            prefix.append(word)
        if not prefix:
            continue

        # Deliver it to the incremental strategy the way the cluster
        # engine delivers stolen work.
        sub_inc = incremental.make_subgraph()
        incremental.rebuild(sub_inc, prefix)
        assert (
            sub_inc.vertices == sub_ref.vertices and sub_inc.edges == sub_ref.edges
        )
        ext_inc = incremental.extensions(sub_inc)
        ext_ref = reference.extensions(sub_ref)
        assert ext_inc == ext_ref
        for word in ext_inc[:2]:
            incremental.push(sub_inc, word)
            reference.push(sub_ref, word)
            assert incremental.extensions(sub_inc) == reference.extensions(sub_ref)
            incremental.pop(sub_inc)
            reference.pop(sub_ref)
        # And agreement survives the pops.
        assert incremental.extensions(sub_inc) == reference.extensions(sub_ref)


@settings(max_examples=30, deadline=None)
@given(random_graphs())
def test_pattern_strategy_consistent_after_rebuild(data):
    """The pattern-induced strategy (stateless maps, but rebuilt prefixes
    flow through the same rebuild path) yields the same candidates from a
    rebuilt subgraph as from a natively grown one."""
    graph, rng_seed = data
    rng = random.Random(rng_seed)
    triangle = Pattern.clique(3)
    if graph.n_edges == 0:
        return
    interner = PatternInterner()
    native = PatternInducedStrategy(graph, Metrics(), interner, triangle)
    rebuilt = PatternInducedStrategy(graph, Metrics(), interner, triangle)
    sub_native = native.make_subgraph()

    prefix = []
    for _ in range(2):
        candidates = native.extensions(sub_native)
        if not candidates:
            break
        word = rng.choice(candidates)
        native.push(sub_native, word)
        prefix.append(word)
    if not prefix:
        return
    sub_rebuilt = rebuilt.make_subgraph()
    rebuilt.rebuild(sub_rebuilt, prefix)
    assert sub_rebuilt.vertices == sub_native.vertices
    assert rebuilt.extensions(sub_rebuilt) == native.extensions(sub_native)


@st.composite
def random_connected_patterns(draw):
    """Small connected labeled pattern as (vertex_labels, edge triples)."""
    n = draw(st.integers(min_value=1, max_value=6))
    rng = random.Random(draw(st.integers(min_value=0, max_value=2**32 - 1)))
    labels = [rng.randrange(100) for _ in range(n)]
    # Random spanning tree guarantees connectivity; extra edges on top.
    edges = []
    seen = set()
    for v in range(1, n):
        u = rng.randrange(v)
        seen.add((u, v))
        edges.append((u, v, rng.randrange(5)))
    for u in range(n):
        for v in range(u + 1, n):
            if (u, v) not in seen and rng.random() < 0.3:
                edges.append((u, v, rng.randrange(5)))
    return tuple(labels), tuple(sorted(edges))


@settings(max_examples=150, deadline=None)
@given(random_connected_patterns())
def test_memoized_dfs_code_matches_raw_search(data):
    vertex_labels, edges = data
    dfscode.clear_code_cache()
    code, mapping = dfscode.minimum_dfs_code(vertex_labels, edges)
    if len(vertex_labels) == 1:
        raw_code, raw_mapping = code, mapping
    else:
        raw_code, raw_mapping = dfscode._minimum_dfs_code_search(vertex_labels, edges)
    assert code == raw_code
    assert mapping == raw_mapping
    # Second call must hit the cache and return the identical answer.
    again = dfscode.minimum_dfs_code(vertex_labels, edges)
    assert again == (code, mapping)
