"""Unit tests for the graph data model."""

import pytest

from repro.graph import Graph, GraphBuilder, GraphError


class TestGraphBuilder:
    def test_empty_graph(self):
        graph = GraphBuilder().build()
        assert graph.n_vertices == 0
        assert graph.n_edges == 0
        assert graph.density() == 0.0

    def test_add_vertices_and_edges(self):
        builder = GraphBuilder(name="toy")
        a = builder.add_vertex(label=5)
        b = builder.add_vertex(label=6)
        eid = builder.add_edge(a, b, label=9)
        graph = builder.build()
        assert graph.name == "toy"
        assert graph.vertex_label(a) == 5
        assert graph.vertex_label(b) == 6
        assert graph.edge_label(eid) == 9
        assert graph.edge(eid) == (0, 1)

    def test_add_vertices_bulk(self):
        builder = GraphBuilder()
        ids = builder.add_vertices(5, label=3)
        assert list(ids) == [0, 1, 2, 3, 4]
        graph = builder.build()
        assert all(graph.vertex_label(v) == 3 for v in graph.vertices())

    def test_self_loop_rejected(self):
        builder = GraphBuilder()
        builder.add_vertex()
        with pytest.raises(GraphError):
            builder.add_edge(0, 0)

    def test_parallel_edge_rejected(self):
        builder = GraphBuilder()
        builder.add_vertices(2)
        builder.add_edge(0, 1)
        with pytest.raises(GraphError):
            builder.add_edge(1, 0)

    def test_missing_endpoint_rejected(self):
        builder = GraphBuilder()
        builder.add_vertex()
        with pytest.raises(GraphError):
            builder.add_edge(0, 3)

    def test_has_edge_is_direction_agnostic(self):
        builder = GraphBuilder()
        builder.add_vertices(2)
        builder.add_edge(1, 0)
        assert builder.has_edge(0, 1)
        assert builder.has_edge(1, 0)

    def test_set_vertex_label_and_keywords(self):
        builder = GraphBuilder()
        builder.add_vertex(label=1)
        builder.set_vertex_label(0, 9)
        builder.set_vertex_keywords(0, ["w1", "w2"])
        graph = builder.build()
        assert graph.vertex_label(0) == 9
        assert graph.vertex_keywords(0) == frozenset({"w1", "w2"})


class TestGraphAccessors:
    def test_neighbors_sorted(self, labeled_graph):
        assert labeled_graph.neighbors(0) == (1, 3)
        assert labeled_graph.neighbors(2) == (1, 3)

    def test_neighbor_views_cached(self, labeled_graph):
        # Accessors hand out immutable cached tuples: repeated calls
        # return the same object, so hot loops pay no copy.
        assert labeled_graph.neighbors(0) is labeled_graph.neighbors(0)
        assert labeled_graph.neighborhood(0) is labeled_graph.neighborhood(0)
        assert labeled_graph.incident_edges(1) is labeled_graph.incident_edges(1)
        assert isinstance(labeled_graph.neighbors(0), tuple)

    def test_edge_endpoints_normalized(self, labeled_graph):
        for e in labeled_graph.edges():
            u, v = labeled_graph.edge(e)
            assert u < v

    def test_are_adjacent(self, labeled_graph):
        assert labeled_graph.are_adjacent(0, 1)
        assert labeled_graph.are_adjacent(1, 0)
        assert not labeled_graph.are_adjacent(0, 2)

    def test_edge_between(self, labeled_graph):
        eid = labeled_graph.edge_between(0, 1)
        assert eid >= 0
        assert labeled_graph.edge(eid) == (0, 1)
        assert labeled_graph.edge_between(0, 2) == -1

    def test_other_endpoint(self, labeled_graph):
        eid = labeled_graph.edge_between(0, 1)
        assert labeled_graph.other_endpoint(eid, 0) == 1
        assert labeled_graph.other_endpoint(eid, 1) == 0

    def test_other_endpoint_rejects_non_member(self, labeled_graph):
        eid = labeled_graph.edge_between(0, 1)
        with pytest.raises(GraphError):
            labeled_graph.other_endpoint(eid, 2)

    def test_degree(self, labeled_graph):
        assert labeled_graph.degree(0) == 2
        assert labeled_graph.degree(1) == 2

    def test_incident_edges(self, labeled_graph):
        edges = labeled_graph.incident_edges(1)
        assert len(edges) == 2
        for e in edges:
            assert 1 in labeled_graph.edge(e)

    def test_neighbor_set_maps_to_edges(self, labeled_graph):
        mapping = labeled_graph.neighbor_set(0)
        assert set(mapping) == {1, 3}
        for u, eid in mapping.items():
            assert labeled_graph.edge_between(0, u) == eid

    def test_density(self, triangle_graph):
        assert triangle_graph.density() == pytest.approx(1.0)

    def test_n_labels_counts_vertex_and_edge_labels(self, labeled_graph):
        # vertex labels {1, 2}, edge labels {7, 8}
        assert labeled_graph.n_labels() == 4

    def test_keywords(self, labeled_graph):
        assert labeled_graph.vertex_keywords(0) == frozenset({"alpha"})
        assert labeled_graph.vertex_keywords(2) == frozenset()
        assert "edgeword" in labeled_graph.edge_keywords(0)
        assert labeled_graph.all_keywords() == frozenset(
            {"alpha", "beta", "gamma", "edgeword"}
        )
        assert labeled_graph.has_keywords()

    def test_no_keyword_graph(self, triangle_graph):
        assert not triangle_graph.has_keywords()
        assert triangle_graph.all_keywords() == frozenset()
        assert triangle_graph.vertex_keywords(0) == frozenset()
        assert triangle_graph.edge_keywords(0) == frozenset()

    def test_iter_edge_tuples(self, triangle_graph):
        tuples = list(triangle_graph.iter_edge_tuples())
        assert (0, 1, 0) in tuples
        assert len(tuples) == 3

    def test_repr(self, triangle_graph):
        assert "n_vertices=3" in repr(triangle_graph)


class TestMutationGuard:
    """Label mutation bumps the version and drops label-derived caches."""

    def test_set_vertex_label_bumps_version(self, labeled_graph):
        before = labeled_graph.version
        labeled_graph.set_vertex_label(0, 9)
        assert labeled_graph.version == before + 1
        assert labeled_graph.vertex_label(0) == 9

    def test_set_edge_label_bumps_version(self, labeled_graph):
        before = labeled_graph.version
        labeled_graph.set_edge_label(0, 9)
        assert labeled_graph.version == before + 1
        assert labeled_graph.edge_label(0) == 9

    def test_label_caches_invalidated(self, labeled_graph):
        # Warm every label-derived cache, then mutate: reads must see the
        # new labels, not the stale cached tables (the PR-5 kernels keyed
        # candidate lookups off these).
        labeled_graph.labeled_adjacency()
        assert 0 in labeled_graph.vertices_with_label(1)
        labeled_graph.label_stats()
        labeled_graph.set_vertex_label(0, 42)
        assert 0 not in labeled_graph.vertices_with_label(1)
        assert 0 in labeled_graph.vertices_with_label(42)
        index, lnbr, _ = labeled_graph.labeled_adjacency()
        for v in labeled_graph.vertices():
            for (nbr_label, _e), (lo, hi) in index[v].items():
                for u in lnbr[lo:hi]:
                    assert labeled_graph.vertex_label(u) == nbr_label

    def test_edge_label_cache_invalidated(self, labeled_graph):
        labeled_graph.labeled_adjacency()
        labeled_graph.set_edge_label(0, 99)
        index, _lnbr, leid = labeled_graph.labeled_adjacency()
        u, v = labeled_graph.edge(0)
        assert (labeled_graph.vertex_label(v), 99) in index[u]

    def test_out_of_range_rejected(self, labeled_graph):
        with pytest.raises(GraphError):
            labeled_graph.set_vertex_label(99, 0)
        with pytest.raises(GraphError):
            labeled_graph.set_edge_label(99, 0)

    def test_frozen_graph_rejects_mutation(self, labeled_graph):
        assert not labeled_graph.frozen
        assert labeled_graph.freeze() is labeled_graph
        assert labeled_graph.frozen
        with pytest.raises(GraphError):
            labeled_graph.set_vertex_label(0, 1)
        with pytest.raises(GraphError):
            labeled_graph.set_edge_label(0, 1)
