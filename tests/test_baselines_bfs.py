"""Tests for the Arabesque-like BFS engine and ODAG storage."""

import pytest

from repro import FractalContext
from repro.apps import motifs_fractoid, triangles_fractoid
from repro.baselines import (
    BFSConfig,
    ODAG,
    ODAGStore,
    SimulatedOOM,
    arabesque_run,
    run_bfs,
)
from repro.graph import erdos_renyi_graph

from conftest import brute_cliques, brute_motif_census


class TestODAG:
    def test_add_and_sizes(self):
        odag = ODAG(3)
        odag.add((1, 2, 3))
        odag.add((1, 2, 4))
        assert odag.n_embeddings == 2
        assert [len(d) for d in odag.domains] == [1, 1, 2]
        assert len(odag.connections[0]) == 1  # (1, 2) shared
        assert len(odag.connections[1]) == 2

    def test_compression_bound(self):
        odag = ODAG(3)
        for i in range(50):
            odag.add((0, 1, i))
        assert odag.total_bytes() < odag.uncompressed_bytes()

    def test_store_per_pattern(self):
        store = ODAGStore()
        store.add("p1", (1, 2))
        store.add("p1", (1, 3))
        store.add("p2", (5, 6, 7))
        assert store.n_patterns == 2
        assert store.n_embeddings == 3
        assert store.total_bytes() > 0
        assert store.compression_ratio() >= 0.0

    def test_more_patterns_more_bytes(self):
        # The Table 2 effect: same embeddings split over more patterns
        # cost more (per-pattern overhead).
        single = ODAGStore()
        multi = ODAGStore()
        for i in range(40):
            single.add("p", (i, i + 1))
            multi.add(f"p{i % 10}", (i, i + 1))
        assert multi.total_bytes() > single.total_bytes()


class TestBFSEngine:
    def test_results_match_fractal(self):
        graph = erdos_renyi_graph(30, 80, seed=3)
        fractal_count = triangles_fractoid(
            FractalContext().from_graph(graph)
        ).count()
        report = arabesque_run(
            triangles_fractoid(FractalContext().from_graph(graph))
        )
        assert not report.oom
        assert report.result_count == fractal_count == brute_cliques(graph, 3)

    def test_motif_census_matches(self):
        graph = erdos_renyi_graph(25, 60, n_labels=2, seed=4)
        report = arabesque_run(
            motifs_fractoid(FractalContext().from_graph(graph), 3)
        )
        (view,) = report.details["aggregations"].values()
        census = {p.canonical_code(): c for p, c in view.items()}
        assert census == brute_motif_census(graph, 3)

    def test_levels_recorded(self):
        graph = erdos_renyi_graph(25, 60, seed=4)
        report = arabesque_run(
            FractalContext().from_graph(graph).vfractoid().expand(3)
        )
        levels = report.details["levels"]
        assert [l.level for l in levels] == [1, 2, 3]
        assert all(l.embeddings > 0 for l in levels)
        assert all(l.odag_bytes > 0 for l in levels)

    def test_memory_grows_with_depth(self):
        graph = erdos_renyi_graph(40, 140, seed=5)
        report = arabesque_run(
            FractalContext().from_graph(graph).vfractoid().expand(3)
        )
        levels = report.details["levels"]
        assert levels[-1].odag_bytes > levels[0].odag_bytes

    def test_oom_on_small_budget(self):
        graph = erdos_renyi_graph(40, 140, seed=5)
        config = BFSConfig(memory_budget_bytes=2_000)
        report = arabesque_run(
            FractalContext().from_graph(graph).vfractoid().expand(3),
            config=config,
        )
        assert report.oom
        assert report.runtime_seconds == float("inf")

    def test_oom_raises_from_run_bfs(self):
        graph = erdos_renyi_graph(40, 140, seed=5)
        from repro.core import VertexInducedStrategy
        from repro.core.primitives import Expand

        with pytest.raises(SimulatedOOM):
            run_bfs(
                graph,
                VertexInducedStrategy,
                [Expand(), Expand(), Expand()],
                config=BFSConfig(memory_budget_bytes=2_000),
            )

    def test_fsm_workflow_single_pass(self):
        # Arabesque runs FSM without from-scratch recomputation: the
        # aggregation filter reads the aggregation finalized earlier in
        # the same pass.
        from repro.apps.fsm import _support_aggregate

        graph = erdos_renyi_graph(30, 60, n_labels=2, seed=9)
        context = FractalContext()
        fg = context.from_graph(graph)
        bootstrap = _support_aggregate(fg.efractoid().expand(1), 4, True)
        workflow = _support_aggregate(
            bootstrap.filter_agg(
                "support", lambda s, agg: s.pattern() in agg
            ).expand(1),
            4,
            True,
        )
        report = arabesque_run(workflow)
        assert not report.oom
        fractal = fsm_reference = None
        from repro.apps import fsm

        reference = fsm(
            FractalContext().from_graph(graph), min_support=4, max_edges=2
        )
        views = report.details["aggregations"]
        mined = set()
        for view in views.values():
            mined |= {p.canonical_code() for p in view.keys()}
        expected = {p.canonical_code() for p in reference.frequent}
        assert mined == expected

    def test_superstep_overheads_accumulate(self):
        graph = erdos_renyi_graph(25, 60, seed=4)
        fast = arabesque_run(
            FractalContext().from_graph(graph).vfractoid().expand(2)
        )
        slow = arabesque_run(
            FractalContext().from_graph(graph).vfractoid().expand(3)
        )
        assert slow.runtime_seconds > fast.runtime_seconds
