"""Cross-module integration and property-based invariants.

These tests tie the whole stack together: the sequential engine, the
simulated cluster (with and without stealing), the BFS baseline and the
brute-force oracles must all tell the same story on randomized inputs.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import ClusterConfig, FractalContext, Pattern
from repro.apps import (
    QUERY_PATTERNS,
    count_cliques,
    motifs_fractoid,
    query_fractoid,
)
from repro.baselines import arabesque_run, seed_query, singlethread_query
from repro.graph import erdos_renyi_graph, powerlaw_graph

from conftest import brute_cliques, brute_connected_induced


@st.composite
def random_graph(draw):
    n = draw(st.integers(min_value=8, max_value=30))
    max_m = n * (n - 1) // 2
    m = draw(st.integers(min_value=n // 2, max_value=min(3 * n, max_m)))
    seed = draw(st.integers(min_value=0, max_value=100_000))
    labels = draw(st.integers(min_value=1, max_value=3))
    return erdos_renyi_graph(n, m, n_labels=labels, seed=seed)


class TestEngineEquivalence:
    @settings(max_examples=15, deadline=None)
    @given(random_graph(), st.integers(min_value=2, max_value=3))
    def test_sequential_equals_oracle(self, graph, k):
        count = FractalContext().from_graph(graph).vfractoid().expand(k).count()
        assert count == brute_connected_induced(graph, k)

    @settings(max_examples=10, deadline=None)
    @given(
        random_graph(),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=1, max_value=4),
    )
    def test_cluster_equals_sequential(self, graph, workers, cores):
        sequential = (
            FractalContext().from_graph(graph).vfractoid().expand(3).count()
        )
        config = ClusterConfig(workers=workers, cores_per_worker=cores)
        cluster = (
            FractalContext(engine=config)
            .from_graph(graph)
            .vfractoid()
            .expand(3)
            .count()
        )
        assert cluster == sequential

    @settings(max_examples=10, deadline=None)
    @given(random_graph())
    def test_bfs_baseline_equals_fractal(self, graph):
        fractal = motifs_fractoid(
            FractalContext().from_graph(graph), 3
        ).aggregation("motifs")
        report = arabesque_run(
            motifs_fractoid(FractalContext().from_graph(graph), 3)
        )
        (view,) = report.details["aggregations"].values()
        assert {k.canonical_code(): v for k, v in fractal.items()} == {
            k.canonical_code(): v for k, v in view.items()
        }

    @settings(max_examples=10, deadline=None)
    @given(random_graph())
    def test_work_conservation_under_stealing(self, graph):
        """Stealing redistributes but never loses or duplicates work."""
        no_ws = ClusterConfig(
            workers=2, cores_per_worker=3, ws_internal=False, ws_external=False
        )
        full_ws = ClusterConfig(workers=2, cores_per_worker=3)
        base = (
            FractalContext(engine=no_ws)
            .from_graph(graph)
            .vfractoid()
            .expand(3)
            .execute(collect="count")
        )
        stolen = (
            FractalContext(engine=full_ws)
            .from_graph(graph)
            .vfractoid()
            .expand(3)
            .execute(collect="count")
        )
        assert base.result_count == stolen.result_count
        assert (
            base.metrics.subgraphs_enumerated
            == stolen.metrics.subgraphs_enumerated
        )


class TestQueryAgreement:
    @pytest.mark.parametrize("name", ["q1", "q2", "q3", "q6", "q7", "q8"])
    def test_three_systems_agree(self, name):
        graph = powerlaw_graph(60, attach=4, seed=13)
        pattern = QUERY_PATTERNS[name]
        fractal = query_fractoid(
            FractalContext().from_graph(graph), pattern
        ).count()
        assert seed_query(graph, pattern).result_count == fractal
        assert singlethread_query(graph, pattern).result_count == fractal

    @settings(max_examples=10, deadline=None)
    @given(random_graph())
    def test_triangle_census_three_ways(self, graph):
        expected = brute_cliques(graph, 3)
        fg = FractalContext().from_graph(graph)
        assert count_cliques(fg, 3) == expected
        # Pattern-induced must agree on single-label graphs only; restrict
        # the query to each label combination otherwise.
        if graph.n_labels() == 1:
            assert (
                query_fractoid(fg, Pattern.clique(3)).count() == expected
            )


class TestDeterminism:
    def test_full_stack_repeatability(self):
        graph = powerlaw_graph(80, attach=4, seed=21)
        config = ClusterConfig(workers=2, cores_per_worker=4)

        def run():
            report = (
                FractalContext(engine=config)
                .from_graph(graph)
                .vfractoid()
                .expand(1)
                .filter(lambda s, c: s.edges_added_last() == s.n_vertices - 1)
                .explore(4)
                .execute(collect="count")
            )
            return (
                report.result_count,
                report.simulated_seconds,
                report.metrics.steals_internal,
                report.metrics.steals_external,
                report.metrics.extension_tests,
            )

        assert run() == run()
