"""Tests for graph reduction views (paper §4.3)."""

from repro.graph import (
    erdos_renyi_graph,
    keyword_reduction,
    reduce_graph,
    wikidata_like,
)


class TestReduceGraph:
    def test_identity_reduction(self, labeled_graph):
        reduced = reduce_graph(labeled_graph)
        assert reduced.graph.n_vertices == labeled_graph.n_vertices
        assert reduced.graph.n_edges == labeled_graph.n_edges
        assert reduced.vertex_reduction() == 0.0
        assert reduced.edge_reduction() == 0.0

    def test_vertex_filter_drops_incident_edges(self, labeled_graph):
        reduced = reduce_graph(labeled_graph, vfilter=lambda v, g: v != 1)
        assert reduced.graph.n_vertices == 3
        # Edges (0,1) and (1,2) die with vertex 1.
        assert reduced.graph.n_edges == 2

    def test_edge_filter(self, labeled_graph):
        reduced = reduce_graph(
            labeled_graph, efilter=lambda e, g: g.edge_label(e) == 7
        )
        assert reduced.graph.n_edges == 2
        assert all(
            reduced.graph.edge_label(e) == 7 for e in reduced.graph.edges()
        )

    def test_origin_mappings(self, labeled_graph):
        reduced = reduce_graph(labeled_graph, vfilter=lambda v, g: v >= 1)
        for new_v in reduced.graph.vertices():
            old_v = reduced.vertex_origin[new_v]
            assert reduced.graph.vertex_label(new_v) == \
                labeled_graph.vertex_label(old_v)
        for new_e in reduced.graph.edges():
            old_e = reduced.edge_origin[new_e]
            assert reduced.graph.edge_label(new_e) == \
                labeled_graph.edge_label(old_e)
        assert reduced.original_vertices([0]) == [reduced.vertex_origin[0]]
        assert reduced.original_edges([0]) == [reduced.edge_origin[0]]

    def test_reduction_fractions(self):
        graph = erdos_renyi_graph(40, 100, seed=2)
        reduced = reduce_graph(graph, vfilter=lambda v, g: v < 20)
        assert reduced.vertex_reduction() == 0.5
        assert 0.0 < reduced.edge_reduction() <= 1.0

    def test_keywords_survive(self, labeled_graph):
        reduced = reduce_graph(labeled_graph)
        assert reduced.graph.vertex_keywords(0) == \
            labeled_graph.vertex_keywords(0)


class TestKeywordReduction:
    def test_keeps_only_query_related_elements(self):
        graph = wikidata_like(scale=0.3)
        query = ["paris", "revolution"]
        reduced = keyword_reduction(graph, query)
        assert reduced.graph.n_vertices < graph.n_vertices
        assert reduced.graph.n_edges < graph.n_edges
        query_set = frozenset(query)
        for e in reduced.graph.edges():
            u, v = reduced.graph.edge(e)
            covered = (
                reduced.graph.edge_keywords(e)
                | reduced.graph.vertex_keywords(u)
                | reduced.graph.vertex_keywords(v)
            )
            assert covered & query_set

    def test_preserves_covering_edges(self):
        graph = wikidata_like(scale=0.3)
        query = frozenset(["paris"])
        reduced = keyword_reduction(graph, query)
        kept_original_edges = set(reduced.edge_origin)
        for e in graph.edges():
            u, v = graph.edge(e)
            covered = (
                graph.edge_keywords(e)
                | graph.vertex_keywords(u)
                | graph.vertex_keywords(v)
            )
            if covered & query:
                assert e in kept_original_edges
