"""Pattern-matching candidate kernels: oracle equivalence and plumbing.

The legacy and indexed kernels (× both order policies) must enumerate
exactly the same distinct pattern instances as the independent
backtracking oracle ``pattern.isomorphism.match_pattern`` — including the
symmetry-breaking dedup count: exactly one result per automorphism class,
no duplicates.  Further tests pin the label-partitioned index structures,
the cost-based planner, kernel pinning/configuration plumbing, the
cluster path, and the back-edge probe metering bugfix.
"""

from __future__ import annotations

from collections import Counter

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st

from repro import ClusterConfig, FractalContext, Pattern
from repro.apps import QUERY_PATTERNS, fsm
from repro.apps.queries import query_fractoid
from repro.core.enumerator import (
    PatternInducedStrategy,
    matching_order,
    plan_matching_order,
)
from repro.graph import GraphBuilder, erdos_renyi_graph
from repro.pattern.isomorphism import match_pattern
from repro.pattern.pattern import PatternInterner
from repro.runtime.metrics import Metrics

KERNELS = ("legacy", "indexed")
POLICIES = ("legacy", "cost")


# ----------------------------------------------------------------------
# Random inputs
# ----------------------------------------------------------------------
PATTERN_SHAPES = [
    # (edge list, name) — labels are drawn per-example.
    ([(0, 1), (1, 2)], "path3"),
    ([(0, 1), (1, 2), (0, 2)], "triangle"),
    ([(0, 1), (1, 2), (2, 3)], "path4"),
    ([(0, 1), (1, 2), (2, 3), (0, 3)], "square"),
    ([(0, 1), (1, 2), (2, 3), (0, 3), (0, 2)], "diamond"),
    ([(0, 1), (0, 2), (0, 3)], "star3"),
    ([(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)], "tailed-triangle"),
]


@st.composite
def graph_and_pattern(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    n = draw(st.integers(min_value=4, max_value=12))
    max_m = n * (n - 1) // 2
    m = draw(st.integers(min_value=n - 1, max_value=max_m))
    n_labels = draw(st.sampled_from([1, 2, 3]))
    n_elabels = draw(st.sampled_from([1, 2]))
    graph = erdos_renyi_graph(
        n, m, n_labels=n_labels, n_edge_labels=n_elabels, seed=seed
    )
    edges, _ = draw(st.sampled_from(PATTERN_SHAPES))
    k = max(max(e) for e in edges) + 1
    vlabels = draw(
        st.lists(
            st.integers(min_value=0, max_value=n_labels - 1),
            min_size=k,
            max_size=k,
        )
    )
    elabels = draw(
        st.lists(
            st.integers(min_value=0, max_value=n_elabels - 1),
            min_size=len(edges),
            max_size=len(edges),
        )
    )
    pattern = Pattern.from_edge_list(
        edges, vertex_labels=vlabels, edge_labels=elabels
    )
    return graph, pattern


def _enumerate(graph, pattern, kernel, order_policy=None):
    ctx = FractalContext(pattern_kernel=kernel, order_policy=order_policy)
    fr = query_fractoid(ctx.from_graph(graph), pattern)
    report = fr.execute(collect="subgraphs")
    return report


def _oracle_instances(graph, pattern):
    """Counter of vertex-image sets, one entry per distinct instance."""
    return Counter(
        frozenset(embedding)
        for embedding in match_pattern(pattern, graph, distinct=True)
    )


# ----------------------------------------------------------------------
# Oracle equivalence (satellite: hypothesis oracle suite)
# ----------------------------------------------------------------------
class TestOracleEquivalence:
    @given(graph_and_pattern())
    @settings(max_examples=30, deadline=None)
    def test_all_kernels_match_oracle(self, gp):
        graph, pattern = gp
        expected = _oracle_instances(graph, pattern)
        for kernel in KERNELS:
            for policy in POLICIES:
                report = _enumerate(graph, pattern, kernel, policy)
                got = Counter(
                    frozenset(s.vertices) for s in report.subgraphs
                )
                assert got == expected, (kernel, policy)
                # Symmetry breaking deduplicates exactly: one result per
                # instance, so the count equals the oracle's total.
                assert report.result_count == sum(expected.values()), (
                    kernel,
                    policy,
                )

    @given(graph_and_pattern())
    @settings(max_examples=30, deadline=None)
    def test_kernels_identical_streams_under_same_order(self, gp):
        # With the matching order held fixed, the two kernels must
        # produce byte-identical enumeration streams, not just sets.
        graph, pattern = gp
        for policy in POLICIES:
            legacy = _enumerate(graph, pattern, "legacy", policy)
            indexed = _enumerate(graph, pattern, "indexed", policy)
            assert [s.vertices for s in legacy.subgraphs] == [
                s.vertices for s in indexed.subgraphs
            ], policy
            assert [s.edges for s in legacy.subgraphs] == [
                s.edges for s in indexed.subgraphs
            ], policy


class TestQueriesCorpus:
    @pytest.mark.parametrize("name", sorted(QUERY_PATTERNS))
    def test_query_kernel_equivalence(self, name, small_random_graph):
        pattern = QUERY_PATTERNS[name]
        legacy = _enumerate(small_random_graph, pattern, "legacy")
        indexed = _enumerate(small_random_graph, pattern, "indexed")
        # Default order policies differ per kernel, so compare instances
        # (vertex sets), not match tuples.
        assert Counter(frozenset(s.vertices) for s in legacy.subgraphs) == (
            Counter(frozenset(s.vertices) for s in indexed.subgraphs)
        )

    def test_cluster_engine_equivalence(self, small_random_graph):
        pattern = QUERY_PATTERNS["q2"]
        counts = {}
        for kernel in KERNELS:
            config = ClusterConfig(
                workers=2, cores_per_worker=2, pattern_kernel=kernel
            )
            ctx = FractalContext()
            fr = query_fractoid(ctx.from_graph(small_random_graph), pattern)
            report = fr.execute(collect="count", engine=config)
            counts[kernel] = report.result_count
            assert report.pattern_kernel_summary()["kernel"] == kernel
        assert counts["legacy"] == counts["indexed"]

    def test_fsm_corpus_unaffected(self, small_random_graph):
        # FSM runs on edge-induced fractoids: the pattern kernel setting
        # must be a no-op for its aggregation views.
        results = {}
        for kernel in KERNELS:
            ctx = FractalContext(pattern_kernel=kernel)
            result = fsm(
                ctx.from_graph(small_random_graph),
                min_support=3,
                max_edges=2,
            )
            results[kernel] = {
                p.canonical_code(): result.support_of(p)
                for p in result.patterns
            }
        assert results["legacy"] == results["indexed"]


# ----------------------------------------------------------------------
# Cost-based planner
# ----------------------------------------------------------------------
class TestPlanner:
    @given(graph_and_pattern())
    @settings(max_examples=40, deadline=None)
    def test_order_is_connected_permutation(self, gp):
        graph, pattern = gp
        order = plan_matching_order(pattern, graph)
        assert sorted(order) == list(range(pattern.n_vertices))
        placed = {order[0]}
        for p in order[1:]:
            assert any(q in placed for q, _ in pattern.neighborhood(p))
            placed.add(p)

    def test_deterministic(self, small_random_graph):
        pattern = QUERY_PATTERNS["q4"]
        first = plan_matching_order(pattern, small_random_graph)
        assert first == plan_matching_order(pattern, small_random_graph)

    def test_rare_label_starts(self):
        builder = GraphBuilder()
        for _ in range(9):
            builder.add_vertex(label=0)
        builder.add_vertex(label=1)  # vertex 9: the one rare-label vertex
        for v in range(9):
            builder.add_edge(v, 9)
        graph = builder.build()
        pattern = Pattern.from_edge_list([(0, 1)], vertex_labels=[0, 1])
        order = plan_matching_order(pattern, graph)
        assert order[0] == 1  # pattern vertex with the rare label


# ----------------------------------------------------------------------
# Label-partitioned index structures
# ----------------------------------------------------------------------
class TestLabeledIndex:
    def test_labeled_adjacency_segments(self, labeled_graph):
        index, lnbr, leid = labeled_graph.labeled_adjacency()
        for v in labeled_graph.vertices():
            reconstructed = []
            for (vlabel, elabel), (lo, hi) in sorted(index[v].items()):
                for i in range(lo, hi):
                    u = lnbr[i]
                    assert labeled_graph.vertex_label(u) == vlabel
                    assert labeled_graph.edge_label(leid[i]) == elabel
                    reconstructed.append(u)
                # Each segment is sorted by neighbor id.
                assert lnbr[lo:hi] == sorted(lnbr[lo:hi])
            assert sorted(reconstructed) == sorted(labeled_graph.neighbors(v))

    def test_labeled_neighbors(self, labeled_graph):
        assert labeled_graph.labeled_neighbors(0, 2, 7) == (1,)
        assert labeled_graph.labeled_neighbors(0, 2, 8) == (3,)
        assert labeled_graph.labeled_neighbors(0, 1, 7) == ()

    def test_vertices_with_label(self, labeled_graph):
        assert labeled_graph.vertices_with_label(1) == (0, 2)
        assert labeled_graph.vertices_with_label(2) == (1, 3)
        assert labeled_graph.vertices_with_label(99) == ()

    def test_label_stats(self, labeled_graph):
        vertex_counts, pair_counts = labeled_graph.label_stats()
        assert vertex_counts == {1: 2, 2: 2}
        # Each edge contributes one entry per direction.
        assert pair_counts[(1, 7, 2)] == 2  # edges (0,1) and (2,3)
        assert pair_counts[(2, 7, 1)] == 2
        assert pair_counts[(1, 8, 2)] == 2  # edges (1,2) and (0,3)
        assert sum(pair_counts.values()) == 2 * labeled_graph.n_edges

    @given(st.integers(min_value=0, max_value=5000))
    @settings(max_examples=25, deadline=None)
    def test_index_consistent_on_random_graphs(self, seed):
        graph = erdos_renyi_graph(
            10, 20, n_labels=3, n_edge_labels=2, seed=seed
        )
        index, lnbr, leid = graph.labeled_adjacency()
        for v in graph.vertices():
            flat = sorted(
                u for (lo, hi) in index[v].values() for u in lnbr[lo:hi]
            )
            assert flat == sorted(graph.neighbors(v))


# ----------------------------------------------------------------------
# Kernel configuration plumbing
# ----------------------------------------------------------------------
def _strategy(graph, pattern, **kwargs):
    return PatternInducedStrategy(
        graph, Metrics(), PatternInterner(), pattern, **kwargs
    )


class TestConfiguration:
    def test_default_is_legacy(self, small_random_graph):
        strategy = _strategy(small_random_graph, QUERY_PATTERNS["q1"])
        info = strategy.kernel_info()
        assert info["kernel"] == "legacy"
        assert info["order_policy"] == "legacy"
        assert info["order"] == matching_order(QUERY_PATTERNS["q1"])

    def test_indexed_defaults_to_cost_order(self, small_random_graph):
        strategy = _strategy(
            small_random_graph, QUERY_PATTERNS["q1"], kernel="indexed"
        )
        info = strategy.kernel_info()
        assert info["order_policy"] == "cost"
        assert info["order"] == plan_matching_order(
            QUERY_PATTERNS["q1"], small_random_graph
        )

    def test_unpinned_strategy_takes_engine_config(self, small_random_graph):
        strategy = _strategy(small_random_graph, QUERY_PATTERNS["q1"])
        strategy.configure_kernel("indexed")
        info = strategy.kernel_info()
        assert info["kernel"] == "indexed"
        assert info["order_policy"] == "cost"

    def test_pinned_strategy_ignores_engine_config(self, small_random_graph):
        strategy = _strategy(
            small_random_graph,
            QUERY_PATTERNS["q1"],
            kernel="legacy",
            order_policy="legacy",
        )
        strategy.configure_kernel("indexed", "cost")
        info = strategy.kernel_info()
        assert info["kernel"] == "legacy"
        assert info["order_policy"] == "legacy"

    def test_invalid_values_rejected(self, small_random_graph):
        with pytest.raises(ValueError):
            _strategy(small_random_graph, QUERY_PATTERNS["q1"], kernel="bogus")
        with pytest.raises(ValueError):
            _strategy(
                small_random_graph,
                QUERY_PATTERNS["q1"],
                order_policy="bogus",
            )
        with pytest.raises(ValueError):
            ClusterConfig(workers=1, cores_per_worker=2, pattern_kernel="x")
        with pytest.raises(ValueError):
            ClusterConfig(workers=1, cores_per_worker=2, order_policy="x")


# ----------------------------------------------------------------------
# Metering (satellite: back-edge probe bugfix)
# ----------------------------------------------------------------------
class TestMetering:
    def test_legacy_meters_back_edge_probes(self, small_random_graph):
        # The triangle query closes a cycle: position 2 has two back
        # edges, so the legacy kernel must probe the non-anchor one.
        report = _enumerate(small_random_graph, QUERY_PATTERNS["q1"], "legacy")
        assert report.metrics.back_edge_probes > 0
        assert report.metrics.intersect_comparisons == 0
        assert report.metrics.gallop_steps == 0
        assert report.metrics.index_slices == 0

    def test_acyclic_pattern_needs_no_probes(self, small_random_graph):
        path = Pattern.from_edge_list([(0, 1), (1, 2)])
        report = _enumerate(small_random_graph, path, "legacy")
        assert report.metrics.back_edge_probes == 0

    def test_indexed_probes_nothing(self, small_random_graph):
        report = _enumerate(
            small_random_graph, QUERY_PATTERNS["q1"], "indexed"
        )
        assert report.metrics.back_edge_probes == 0
        assert report.metrics.index_slices > 0

    def test_summary_shape(self, small_random_graph):
        report = _enumerate(
            small_random_graph, QUERY_PATTERNS["q1"], "indexed"
        )
        summary = report.pattern_kernel_summary()
        assert summary["kernel"] == "indexed"
        assert summary["order_policy"] == "cost"
        assert summary["candidate_units"] > 0
        assert summary["order"] == report.steps[-1].kernel_info["order"]

    def test_non_pattern_runs_report_no_kernel(self, small_random_graph):
        ctx = FractalContext()
        fr = ctx.from_graph(small_random_graph).vfractoid().expand(2)
        report = fr.execute(collect="count")
        assert report.pattern_kernel_summary()["kernel"] is None
