"""Tests for the cost model and the Table 2 memory model."""

from repro.graph import erdos_renyi_graph, wikidata_like
from repro.runtime import DEFAULT_COST_MODEL, CostModel, MemoryModel, Metrics


class TestCostModel:
    def test_seconds_conversion(self):
        cost = CostModel(units_per_second=1000.0)
        assert cost.seconds(2000.0) == 2.0

    def test_specialized_rate(self):
        cost = CostModel(units_per_second=1000.0, framework_factor=2.0)
        assert cost.specialized_seconds(2000.0) == 1.0

    def test_step_units_weights(self):
        metrics = Metrics()
        metrics.extension_tests = 10
        metrics.filter_calls = 5
        metrics.aggregate_updates = 2
        metrics.subgraphs_enumerated = 3
        metrics.results_emitted = 1
        cost = DEFAULT_COST_MODEL
        expected = (
            10 * cost.extension_test_units
            + 5 * cost.filter_units
            + 2 * cost.aggregate_units
            + 3 * cost.subgraph_units
            + 1 * cost.emit_units
        )
        assert cost.step_units(metrics) == expected

    def test_external_steal_costlier_than_internal(self):
        cost = DEFAULT_COST_MODEL
        assert cost.steal_external_cost(1) > cost.steal_internal_cost()

    def test_external_steal_grows_with_prefix(self):
        cost = DEFAULT_COST_MODEL
        assert cost.steal_external_cost(5) > cost.steal_external_cost(1)

    def test_frozen(self):
        import dataclasses

        import pytest

        with pytest.raises(dataclasses.FrozenInstanceError):
            DEFAULT_COST_MODEL.units_per_second = 1.0  # type: ignore


class TestMetrics:
    def test_merge_sums_counts_and_maxes_peaks(self):
        a, b = Metrics(), Metrics()
        a.extension_tests = 10
        b.extension_tests = 5
        a.peak_enumerator_bytes = 100
        b.peak_enumerator_bytes = 300
        a.merge(b)
        assert a.extension_tests == 15
        assert a.peak_enumerator_bytes == 300

    def test_snapshot_round_trip(self):
        metrics = Metrics()
        metrics.extension_tests = 7
        snap = metrics.snapshot()
        assert snap["extension_tests"] == 7
        assert set(snap) == set(Metrics.__slots__)


class TestMemoryModel:
    def test_graph_bytes_monotone_in_size(self):
        model = MemoryModel()
        small = erdos_renyi_graph(10, 20, seed=1)
        large = erdos_renyi_graph(100, 300, seed=1)
        assert model.graph_bytes(large) > model.graph_bytes(small)

    def test_keyword_graphs_cost_more(self):
        model = MemoryModel()
        graph = wikidata_like(scale=0.2)
        bare = erdos_renyi_graph(
            graph.n_vertices, graph.n_edges, seed=1
        )
        assert model.graph_bytes(graph) > model.graph_bytes(bare)

    def test_fractal_worker_flat_in_state(self):
        model = MemoryModel()
        graph = erdos_renyi_graph(50, 150, seed=2)
        shallow = model.fractal_worker_bytes(graph, 1_000, 10, 4)
        deep = model.fractal_worker_bytes(graph, 1_500, 10, 4)
        # Enumerator growth is additive and tiny relative to the base.
        assert deep > shallow
        assert (deep - shallow) < model.worker_base_bytes

    def test_arabesque_worker_grows_with_level_state(self):
        model = MemoryModel()
        graph = erdos_renyi_graph(50, 150, seed=2)
        small = model.arabesque_worker_bytes(graph, 10_000)
        big = model.arabesque_worker_bytes(graph, 10_000_000)
        assert big - small == 10_000_000 - 10_000

    def test_report_gb(self):
        model = MemoryModel(report_gb_per_byte=0.5)
        assert model.to_report_gb(10) == 5.0
