"""Shared fixtures and oracles for the test suite.

The oracles here are deliberately naive (combinatorial brute force and
networkx isomorphism) so they are independently credible: production code
paths are never used to check themselves.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, Iterator, List, Tuple

import pytest

from repro import FractalContext, Pattern
from repro.graph import Graph, GraphBuilder, erdos_renyi_graph


# ----------------------------------------------------------------------
# Graph fixtures
# ----------------------------------------------------------------------
@pytest.fixture
def triangle_graph() -> Graph:
    """K3."""
    builder = GraphBuilder()
    for _ in range(3):
        builder.add_vertex()
    builder.add_edge(0, 1)
    builder.add_edge(1, 2)
    builder.add_edge(0, 2)
    return builder.build()


@pytest.fixture
def small_random_graph() -> Graph:
    """Fixed 30-vertex random graph used across integration tests."""
    return erdos_renyi_graph(30, 80, n_labels=2, seed=3)


@pytest.fixture
def labeled_graph() -> Graph:
    """Graph with vertex and edge labels plus keywords."""
    builder = GraphBuilder()
    builder.add_vertex(label=1, keywords=["alpha"])
    builder.add_vertex(label=2, keywords=["beta"])
    builder.add_vertex(label=1)
    builder.add_vertex(label=2, keywords=["alpha", "gamma"])
    builder.add_edge(0, 1, label=7, keywords=["edgeword"])
    builder.add_edge(1, 2, label=8)
    builder.add_edge(2, 3, label=7)
    builder.add_edge(0, 3, label=8)
    return builder.build()


@pytest.fixture
def context() -> FractalContext:
    return FractalContext()


# ----------------------------------------------------------------------
# Brute-force oracles
# ----------------------------------------------------------------------
def brute_cliques(graph: Graph, k: int) -> int:
    """Number of k-cliques by exhaustive combination testing."""
    count = 0
    for combo in combinations(range(graph.n_vertices), k):
        if all(graph.are_adjacent(a, b) for a, b in combinations(combo, 2)):
            count += 1
    return count


def _vertex_set_connected(graph: Graph, vertices: Tuple[int, ...]) -> bool:
    members = set(vertices)
    seen = {vertices[0]}
    stack = [vertices[0]]
    while stack:
        v = stack.pop()
        for u in graph.neighbors(v):
            if u in members and u not in seen:
                seen.add(u)
                stack.append(u)
    return len(seen) == len(members)


def brute_connected_induced(graph: Graph, k: int) -> int:
    """Number of connected induced k-vertex subgraphs."""
    return sum(
        1
        for combo in combinations(range(graph.n_vertices), k)
        if _vertex_set_connected(graph, combo)
    )


def iter_connected_edge_sets(graph: Graph, k: int) -> Iterator[Tuple[int, ...]]:
    """All connected k-edge subgraphs as edge-id tuples."""
    for combo in combinations(range(graph.n_edges), k):
        covered = set(graph.edge(combo[0]))
        remaining = set(combo[1:])
        changed = True
        while remaining and changed:
            changed = False
            for e in list(remaining):
                u, v = graph.edge(e)
                if u in covered or v in covered:
                    covered.update((u, v))
                    remaining.discard(e)
                    changed = True
        if not remaining:
            yield combo


def brute_connected_edge_subgraphs(graph: Graph, k: int) -> int:
    """Number of connected k-edge subgraphs."""
    return sum(1 for _ in iter_connected_edge_sets(graph, k))


def pattern_of_edge_set(graph: Graph, edges: Tuple[int, ...]) -> Pattern:
    """Canonical pattern of an edge-id set."""
    vertices = sorted({v for e in edges for v in graph.edge(e)})
    position = {v: i for i, v in enumerate(vertices)}
    labels = [graph.vertex_label(v) for v in vertices]
    triples = []
    for e in edges:
        a, b = graph.edge(e)
        pa, pb = position[a], position[b]
        if pa > pb:
            pa, pb = pb, pa
        triples.append((pa, pb, graph.edge_label(e)))
    return Pattern(labels, triples)


def brute_motif_census(graph: Graph, k: int) -> Dict[Tuple, int]:
    """Canonical code -> count of connected induced k-subgraphs."""
    census: Dict[Tuple, int] = {}
    for combo in combinations(range(graph.n_vertices), k):
        if not _vertex_set_connected(graph, combo):
            continue
        position = {v: i for i, v in enumerate(combo)}
        labels = [graph.vertex_label(v) for v in combo]
        triples = []
        for i, v in enumerate(combo):
            for u, eid in graph.neighborhood(v):
                j = position.get(u)
                if j is not None and i < j:
                    triples.append((i, j, graph.edge_label(eid)))
        code = Pattern(labels, triples).canonical_code()
        census[code] = census.get(code, 0) + 1
    return census


def brute_true_mni(graph: Graph, pattern: Pattern) -> int:
    """MNI support over *all* isomorphisms (the definitional computation)."""
    n = pattern.n_vertices
    domains: List[set] = [set() for _ in range(n)]

    match = [-1] * n
    used: set = set()

    def feasible(p: int, v: int) -> bool:
        if v in used or graph.vertex_label(v) != pattern.vertex_labels[p]:
            return False
        for q, elabel in pattern.neighborhood(p):
            if match[q] >= 0:
                eid = graph.edge_between(v, match[q])
                if eid < 0 or graph.edge_label(eid) != elabel:
                    return False
        return True

    def extend(p: int) -> None:
        if p == n:
            for q in range(n):
                domains[q].add(match[q])
            return
        for v in graph.vertices():
            if feasible(p, v):
                match[p] = v
                used.add(v)
                extend(p + 1)
                used.discard(v)
                match[p] = -1

    extend(0)
    return min((len(d) for d in domains), default=0)
