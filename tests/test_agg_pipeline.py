"""Two-level aggregation pipeline: equivalence and metering properties.

The pipeline's correctness contract: for commutative/associative reduce
functions, neither the merge order, nor the hash partitioning, nor the
bounded combiner's spill threshold may change a finalized aggregation
view.  The hypothesis suites below drive randomized key/value streams and
cluster shapes through every combination and compare against the seed's
flat sequential merge; the app-level tests re-assert the same on real
motifs/FSM workloads, including the update_fn (in-place combining) path
and the early (streaming, per-key-monotone) aggregation filter.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ClusterConfig, FractalContext
from repro.apps import fsm, motifs
from repro.core.aggregation import (
    AggregationStorage,
    BoundedCombinerStorage,
    merge_storages_streaming,
    ship_words,
    stable_partition,
)
from repro.graph import mico_like
from repro.runtime.costmodel import CostModel

# ----------------------------------------------------------------------
# Strategies: streams of (key, value) records partitioned across cores
# ----------------------------------------------------------------------
_records = st.lists(
    st.tuples(st.integers(min_value=0, max_value=12), st.integers(-50, 50)),
    max_size=80,
)
_core_streams = st.lists(_records, min_size=1, max_size=6)


def _flat_seed_merge(storages):
    """The seed's collection loop: flat merge in core order."""
    merged = None
    for storage in storages:
        if merged is None:
            merged = storage
        else:
            merged.merge(storage)
    return merged


def _fill(storage, records):
    for key, value in records:
        storage.add(key, value)
    return storage


@settings(max_examples=60, deadline=None)
@given(streams=_core_streams)
def test_streaming_merge_matches_flat_merge(streams):
    """Streaming k-way merge == the seed's sequential merge, byte for byte."""
    reduce_fn = lambda a, b: a + b
    build = lambda: [
        _fill(AggregationStorage("s", reduce_fn), records) for records in streams
    ]
    expected = _flat_seed_merge(build()).finalize().to_dict()
    actual = merge_storages_streaming(build()).finalize().to_dict()
    assert actual == expected
    # Byte-identical under default config: key order matches too.
    assert list(actual) == list(expected)


@settings(max_examples=60, deadline=None)
@given(streams=_core_streams, threshold=st.integers(-20, 20))
def test_early_monotone_filter_matches_late_filter(streams, threshold):
    """A per-key-monotone agg_filter applied during the merge == finalize."""
    reduce_fn = lambda a, b: a + b
    agg_filter = lambda key, value: value >= threshold

    def build(monotone):
        return [
            _fill(
                AggregationStorage("s", reduce_fn, agg_filter, monotone), records
            )
            for records in streams
        ]

    late = merge_storages_streaming(build(False)).finalize().to_dict()
    early = merge_storages_streaming(build(True)).finalize().to_dict()
    assert early == late
    assert list(early) == list(late)


@settings(max_examples=60, deadline=None)
@given(
    streams=_core_streams,
    budget=st.integers(min_value=1, max_value=16),
)
def test_spill_threshold_never_changes_views(streams, budget):
    """Bounded combiners spill coldest entries; finalized views are equal."""
    reduce_fn = lambda a, b: a + b

    unbounded = [
        _fill(AggregationStorage("s", reduce_fn), records) for records in streams
    ]
    bounded = [
        _fill(BoundedCombinerStorage("s", reduce_fn, entry_budget=budget), records)
        for records in streams
    ]
    expected = _flat_seed_merge(unbounded).finalize().to_dict()

    # Worker-level combine re-reduces each core's spilled entries before
    # its live map — exactly what the cluster's shuffle stage does.
    combined = AggregationStorage("s", reduce_fn)
    spilled = 0
    for storage in bounded:
        spill = storage.spill_pairs()
        combined.merge_pairs(spill)
        spilled += len(spill)
        combined.merge(storage)
    assert combined.finalize().to_dict() == expected
    total = sum(len(records) for records in streams)
    if total > budget:
        # The budget is enforced: live maps never exceed it by more than
        # the pre-spill overshoot of a single add.
        for storage in bounded:
            assert len(storage) <= budget


@settings(max_examples=40, deadline=None)
@given(
    streams=_core_streams,
    n_partitions=st.integers(min_value=1, max_value=8),
)
def test_partitioning_covers_all_keys_deterministically(streams, n_partitions):
    """Hash partitioning is stable, total, and never changes merged data."""
    reduce_fn = lambda a, b: a + b
    merged = merge_storages_streaming(
        [_fill(AggregationStorage("s", reduce_fn), r) for r in streams]
    )
    parts = {}
    for key, value in merged.entries():
        p = stable_partition(key, n_partitions)
        assert 0 <= p < max(1, n_partitions)
        assert stable_partition(key, n_partitions) == p  # repeatable
        parts.setdefault(p, {})[key] = value
    reassembled = {}
    for p in sorted(parts):
        reassembled.update(parts[p])
    assert reassembled == merged.finalize().to_dict()


@settings(max_examples=40, deadline=None)
@given(streams=_core_streams)
def test_update_fn_path_equals_add_path(streams):
    """add_inplace(update_fn) must equal add(value_fn) record by record."""
    reduce_fn = lambda a, b: a + b
    plain = AggregationStorage("s", reduce_fn)
    inplace = AggregationStorage("s", reduce_fn)
    value_fn = lambda subgraph, computation: subgraph  # records pose as values
    update_fn = lambda value, subgraph, computation: value + subgraph
    for records in streams:
        for key, value in records:
            plain.add(key, value)
            inplace.add_inplace(key, value, None, value_fn, update_fn)
    assert plain.finalize().to_dict() == inplace.finalize().to_dict()


def test_ship_words_shapes():
    assert ship_words(7) == 1
    assert ship_words("abcd") == 4
    assert ship_words((1, 2, 3)) == 3
    assert ship_words(()) == 1

    class Custom:
        def ship_words(self):
            return 42

    assert ship_words(Custom()) == 42


def test_stable_partition_is_process_independent_for_strings():
    # str hash randomization must not leak into partition choice.
    assert stable_partition("pattern-key", 7) == stable_partition("pattern-key", 7)
    assert stable_partition((1, "a", 2), 5) == stable_partition((1, "a", 2), 5)


def test_bounded_combiner_rejects_bad_budget():
    with pytest.raises(ValueError):
        BoundedCombinerStorage("s", lambda a, b: a + b, entry_budget=0)
    with pytest.raises(ValueError):
        ClusterConfig(workers=1, cores_per_worker=2, agg_entry_budget=0)


# ----------------------------------------------------------------------
# App-level equivalence on the simulated cluster
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def small_graph():
    return mico_like(scale=0.25)


CLUSTER_SHAPES = [
    ClusterConfig(workers=1, cores_per_worker=4),
    ClusterConfig(workers=2, cores_per_worker=3),
    ClusterConfig(workers=2, cores_per_worker=3, agg_entry_budget=3),
    ClusterConfig(workers=3, cores_per_worker=2, meter_agg_shuffle=False),
]


@pytest.mark.parametrize("config", CLUSTER_SHAPES)
def test_motifs_views_identical_across_pipeline_configs(small_graph, config):
    expected = motifs(FractalContext().from_graph(small_graph), 3)
    actual = motifs(FractalContext(engine=config).from_graph(small_graph), 3)
    assert dict(actual) == dict(expected)


@pytest.mark.parametrize("config", CLUSTER_SHAPES)
def test_fsm_results_identical_across_pipeline_configs(small_graph, config):
    expected = fsm(
        FractalContext().from_graph(small_graph), min_support=5, max_edges=2
    )
    actual = fsm(
        FractalContext(engine=config).from_graph(small_graph),
        min_support=5,
        max_edges=2,
    )
    assert set(actual.frequent) == set(expected.frequent)
    for pattern in expected.frequent:
        assert actual.support_of(pattern) == expected.support_of(pattern)


def test_metered_shuffle_reaches_report_and_makespan(small_graph):
    config = ClusterConfig(workers=2, cores_per_worker=2)
    context = FractalContext(engine=config)
    motifs(context.from_graph(small_graph), 3)
    report = context.last_report
    summary = report.aggregation_shuffle_summary()
    assert summary["entries_shipped"] > 0
    assert summary["ship_units"] > 0
    assert summary["combine_units"] > 0
    assert summary["messages"] > 0
    assert 0.0 < summary["combine_ratio"] <= 1.0
    assert report.metrics.agg_ship_units > 0
    # The shuffle charge lands on exactly one core per worker.
    step = report.steps[-1].cluster
    chargers = [c for c in step.cores if c.agg_ship_units > 0]
    assert len(chargers) == config.workers
    assert all(c.agg_entries_shipped > 0 for c in chargers)
    # Metering moves makespan: the same run without metering is shorter.
    off = ClusterConfig(workers=2, cores_per_worker=2, meter_agg_shuffle=False)
    context_off = FractalContext(engine=off)
    motifs(context_off.from_graph(small_graph), 3)
    report_off = context_off.last_report
    assert report_off.metrics.agg_ship_units == 0
    assert (
        report.steps[-1].cluster.makespan_units
        > report_off.steps[-1].cluster.makespan_units
    )


def test_agg_messages_separate_from_steal_messages(small_graph):
    config = ClusterConfig(workers=2, cores_per_worker=2, ws_internal=False)
    context = FractalContext(engine=config)
    motifs(context.from_graph(small_graph), 3)
    metrics = context.last_report.metrics
    # Steal messages still follow the 2-per-external-steal protocol;
    # aggregation traffic is counted on its own meter.
    assert metrics.steal_messages == 2 * metrics.steals_external
    assert metrics.agg_messages > 0


def test_spilled_entries_metered(small_graph):
    config = ClusterConfig(workers=2, cores_per_worker=2, agg_entry_budget=2)
    context = FractalContext(engine=config)
    census = motifs(context.from_graph(small_graph), 3)
    assert census == motifs(FractalContext().from_graph(small_graph), 3)
    assert context.last_report.metrics.agg_spilled_entries > 0


def test_peak_aggregation_entries_populated_on_cluster(small_graph):
    config = ClusterConfig(workers=2, cores_per_worker=2)
    context = FractalContext(engine=config)
    motifs(context.from_graph(small_graph), 3)
    assert context.last_report.metrics.peak_aggregation_entries > 0


def test_agg_cost_model_helpers():
    cost = CostModel()
    assert cost.agg_combine_cost(10) == 10 * cost.agg_combine_units_per_entry
    assert cost.agg_ship_cost(0, 0, 0) == 0.0
    assert cost.agg_ship_cost(4, 20, 2) == (
        4 * cost.agg_ship_units_per_entry
        + 20 * cost.agg_ship_units_per_word
        + 2 * cost.agg_message_units
    )


def test_subgraph_pattern_memo_invalidated_by_mutation(small_graph):
    from repro.core.subgraph import Subgraph

    subgraph = Subgraph(small_graph)
    v0 = next(iter(small_graph.vertices()))
    subgraph.push_vertex(v0, [])
    first = subgraph.pattern_with_positions()
    assert subgraph.pattern_with_positions() is first  # memo hit
    neighbors = [u for u, _ in small_graph.neighborhood(v0)]
    if neighbors:
        eid = small_graph.edge_between(v0, neighbors[0])
        subgraph.push_vertex(neighbors[0], [eid] if eid is not None else [])
        second = subgraph.pattern_with_positions()
        assert second is not first
        assert second[0].n_vertices == 2
        subgraph.pop()
    assert subgraph.pattern_with_positions()[0] is first[0]
