"""Edge cases across the stack: tiny graphs, degenerate workflows, misuse."""

import pytest

from repro import ClusterConfig, FractalContext, Pattern
from repro.apps import count_cliques, fsm, motifs
from repro.graph import GraphBuilder, path_graph
from repro.harness import cost_of


def _empty_graph():
    return GraphBuilder(name="empty").build()


def _single_vertex():
    builder = GraphBuilder(name="one")
    builder.add_vertex(label=3)
    return builder.build()


def _two_components():
    builder = GraphBuilder(name="two-comp")
    builder.add_vertices(4)
    builder.add_edge(0, 1)
    builder.add_edge(2, 3)
    return builder.build()


class TestDegenerateGraphs:
    def test_empty_graph_enumeration(self):
        fg = FractalContext().from_graph(_empty_graph())
        assert fg.vfractoid().expand(1).count() == 0
        assert fg.efractoid().expand(1).count() == 0

    def test_single_vertex_graph(self):
        fg = FractalContext().from_graph(_single_vertex())
        assert fg.vfractoid().expand(1).count() == 1
        assert fg.vfractoid().expand(2).count() == 0
        census = motifs(fg, 1)
        (pattern, count), = census.items()
        assert count == 1
        assert pattern.vertex_labels == (3,)

    def test_disconnected_components_enumerated_separately(self):
        fg = FractalContext().from_graph(_two_components())
        # 2-vertex connected subgraphs = the two edges.
        assert fg.vfractoid().expand(2).count() == 2
        # No connected 3-vertex subgraph spans components.
        assert fg.vfractoid().expand(3).count() == 0

    def test_cluster_engine_on_empty_graph(self):
        config = ClusterConfig(workers=1, cores_per_worker=2)
        fg = FractalContext(engine=config).from_graph(_empty_graph())
        assert fg.vfractoid().expand(1).count() == 0

    def test_cliques_larger_than_graph(self):
        fg = FractalContext().from_graph(path_graph(3))
        assert count_cliques(fg, 5) == 0

    def test_fsm_on_tiny_graph(self):
        fg = FractalContext().from_graph(path_graph(2))
        result = fsm(fg, min_support=1, max_edges=2)
        assert len(result.frequent) == 1  # the single edge pattern

    def test_more_cores_than_roots(self):
        config = ClusterConfig(workers=2, cores_per_worker=8)  # 16 cores
        fg = FractalContext(engine=config).from_graph(path_graph(3))
        assert fg.vfractoid().expand(2).count() == 2


class TestWorkflowMisuse:
    def test_expand_beyond_pattern_yields_nothing(self):
        graph = path_graph(4)
        fg = FractalContext().from_graph(graph)
        pattern = Pattern.from_edge_list([(0, 1)])
        # Expanding past the pattern's vertex count finds no extensions.
        assert fg.pfractoid(pattern).expand(4).count() == 0

    def test_filter_before_expand_runs_on_empty_subgraph(self):
        graph = path_graph(3)
        fg = FractalContext().from_graph(graph)
        seen = []

        def probe(subgraph, computation):
            seen.append(subgraph.n_vertices)
            return True

        fg.vfractoid().filter(probe).expand(1).count()
        assert seen[0] == 0

    def test_aggregation_with_no_results(self):
        fg = FractalContext().from_graph(_single_vertex())
        counts = (
            fg.vfractoid()
            .expand(2)
            .aggregate(
                "none",
                key_fn=lambda s, c: 0,
                value_fn=lambda s, c: 1,
                reduce_fn=lambda a, b: a + b,
            )
            .aggregation("none")
        )
        assert counts == {}

    def test_zero_support_pattern_not_in_fsm(self):
        graph = path_graph(3, labels=[1, 2, 3])
        result = fsm(
            FractalContext().from_graph(graph), min_support=2, max_edges=2
        )
        assert not result.frequent


class TestCostOfHelper:
    def test_cost_found_immediately_for_slow_baseline(self):
        from repro.graph import erdos_renyi_graph

        graph = erdos_renyi_graph(15, 30, seed=2)
        outcome = cost_of(
            lambda: FractalContext().from_graph(graph).vfractoid().expand(2),
            baseline_seconds=1e9,
            max_threads=4,
        )
        assert outcome["cost"] == 1

    def test_cost_none_for_instant_baseline(self):
        from repro.graph import erdos_renyi_graph

        graph = erdos_renyi_graph(15, 30, seed=2)
        outcome = cost_of(
            lambda: FractalContext().from_graph(graph).vfractoid().expand(2),
            baseline_seconds=0.0,
            max_threads=2,
        )
        assert outcome["cost"] is None
        assert set(outcome["times"]) == {1, 2}
