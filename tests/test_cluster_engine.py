"""Tests for the simulated cluster engine and hierarchical work stealing."""

import pytest

from repro import ClusterConfig, FractalContext
from repro.graph import erdos_renyi_graph, powerlaw_graph

from conftest import brute_cliques, brute_connected_induced


def _clique_fractoid(context, graph, k):
    fg = context.from_graph(graph)
    return (
        fg.vfractoid()
        .expand(1)
        .filter(lambda s, c: s.edges_added_last() == s.n_vertices - 1)
        .explore(k)
    )


WS_CONFIGS = [
    ("disabled", ClusterConfig(workers=2, cores_per_worker=3, ws_internal=False, ws_external=False)),
    ("internal", ClusterConfig(workers=2, cores_per_worker=3, ws_internal=True, ws_external=False)),
    ("external", ClusterConfig(workers=2, cores_per_worker=3, ws_internal=False, ws_external=True)),
    ("both", ClusterConfig(workers=2, cores_per_worker=3, ws_internal=True, ws_external=True)),
]


class TestResultEquivalence:
    @pytest.mark.parametrize("name,config", WS_CONFIGS)
    def test_cliques_match_sequential(self, name, config):
        graph = erdos_renyi_graph(30, 80, seed=3)
        count = _clique_fractoid(FractalContext(), graph, 3).count()
        cluster = _clique_fractoid(FractalContext(engine=config), graph, 3)
        assert cluster.count() == count == brute_cliques(graph, 3)

    def test_induced_subgraph_counts(self):
        graph = erdos_renyi_graph(25, 60, seed=7)
        config = ClusterConfig(workers=3, cores_per_worker=2)
        fg = FractalContext(engine=config).from_graph(graph)
        assert fg.vfractoid().expand(3).count() == brute_connected_induced(
            graph, 3
        )

    def test_aggregation_matches_sequential(self):
        graph = erdos_renyi_graph(25, 60, n_labels=3, seed=8)
        def census(engine):
            fg = FractalContext(engine=engine).from_graph(graph)
            return (
                fg.vfractoid()
                .expand(3)
                .aggregate(
                    "motifs",
                    key_fn=lambda s, c: s.pattern(),
                    value_fn=lambda s, c: 1,
                    reduce_fn=lambda a, b: a + b,
                )
                .aggregation("motifs")
            )
        seq = census("sequential")
        par = census(ClusterConfig(workers=2, cores_per_worker=4))
        assert {k.canonical_code(): v for k, v in seq.items()} == {
            k.canonical_code(): v for k, v in par.items()
        }

    def test_determinism(self):
        graph = powerlaw_graph(60, attach=3, seed=5)
        config = ClusterConfig(workers=2, cores_per_worker=3)
        r1 = _clique_fractoid(FractalContext(engine=config), graph, 3).execute()
        r2 = _clique_fractoid(FractalContext(engine=config), graph, 3).execute()
        assert r1.result_count == r2.result_count
        assert r1.simulated_seconds == r2.simulated_seconds
        assert r1.metrics.steals_internal == r2.metrics.steals_internal


class TestWorkStealing:
    def test_steals_happen_on_skewed_input(self):
        graph = powerlaw_graph(80, attach=4, seed=2)
        config = ClusterConfig(workers=2, cores_per_worker=4)
        report = _clique_fractoid(
            FractalContext(engine=config), graph, 3
        ).execute()
        assert report.metrics.steals_internal > 0

    def test_internal_preferred_over_external(self):
        graph = powerlaw_graph(80, attach=4, seed=2)
        config = ClusterConfig(workers=2, cores_per_worker=4)
        report = _clique_fractoid(
            FractalContext(engine=config), graph, 3
        ).execute()
        assert report.metrics.steals_internal >= report.metrics.steals_external

    def test_disabled_ws_has_no_steals(self):
        graph = powerlaw_graph(80, attach=4, seed=2)
        config = ClusterConfig(
            workers=2, cores_per_worker=4, ws_internal=False, ws_external=False
        )
        report = _clique_fractoid(
            FractalContext(engine=config), graph, 3
        ).execute()
        assert report.metrics.steals_internal == 0
        assert report.metrics.steals_external == 0

    def test_external_only_sends_messages(self):
        graph = powerlaw_graph(80, attach=4, seed=2)
        config = ClusterConfig(
            workers=2, cores_per_worker=4, ws_internal=False, ws_external=True
        )
        report = _clique_fractoid(
            FractalContext(engine=config), graph, 3
        ).execute()
        assert report.metrics.steals_external > 0
        assert report.metrics.steal_messages == 2 * report.metrics.steals_external

    def test_balancing_reduces_makespan(self):
        graph = powerlaw_graph(120, attach=4, seed=9)
        base = ClusterConfig(
            workers=2, cores_per_worker=4, ws_internal=False, ws_external=False,
            include_setup_overhead=False,
        )
        balanced = ClusterConfig(
            workers=2, cores_per_worker=4, ws_internal=True, ws_external=True,
            include_setup_overhead=False,
        )
        t_base = _clique_fractoid(
            FractalContext(engine=base), graph, 4
        ).execute().simulated_seconds
        t_balanced = _clique_fractoid(
            FractalContext(engine=balanced), graph, 4
        ).execute().simulated_seconds
        assert t_balanced < t_base


class TestScaling:
    def test_more_cores_is_faster(self):
        graph = powerlaw_graph(100, attach=4, seed=4)
        times = []
        for cores in (1, 4, 8):
            config = ClusterConfig(
                workers=1, cores_per_worker=cores, include_setup_overhead=False
            )
            report = _clique_fractoid(
                FractalContext(engine=config), graph, 4
            ).execute()
            times.append(report.simulated_seconds)
        assert times[1] < times[0]
        assert times[2] < times[1]

    def test_makespan_at_least_work_over_cores(self):
        graph = erdos_renyi_graph(40, 110, seed=6)
        config = ClusterConfig(
            workers=2, cores_per_worker=4, include_setup_overhead=False
        )
        report = _clique_fractoid(
            FractalContext(engine=config), graph, 3
        ).execute()
        step = report.steps[0]
        total_busy = sum(c.busy_units for c in step.cluster.cores)
        assert step.cluster.makespan_units >= total_busy / 8


class TestReports:
    def test_setup_overhead_included(self):
        graph = erdos_renyi_graph(20, 40, seed=1)
        config = ClusterConfig(workers=1, cores_per_worker=2)
        report = _clique_fractoid(
            FractalContext(engine=config), graph, 3
        ).execute()
        assert report.setup_seconds == config.cost_model.setup_overhead_s
        assert report.total_seconds > report.simulated_seconds

    def test_core_reports_complete(self):
        graph = erdos_renyi_graph(30, 80, seed=3)
        config = ClusterConfig(workers=2, cores_per_worker=2)
        report = _clique_fractoid(
            FractalContext(engine=config), graph, 3
        ).execute()
        cores = report.steps[0].cluster.cores
        assert len(cores) == 4
        assert {c.worker_id for c in cores} == {0, 1}
        assert all(c.finish_units >= c.busy_units * 0 for c in cores)

    def test_timeline_recording(self):
        graph = erdos_renyi_graph(30, 80, seed=3)
        config = ClusterConfig(
            workers=1, cores_per_worker=4, record_timeline=True
        )
        report = _clique_fractoid(
            FractalContext(engine=config), graph, 3
        ).execute()
        cores = report.steps[0].cluster.cores
        assert any(c.busy_intervals for c in cores)
        for core in cores:
            for start, end in core.busy_intervals:
                assert end > start

    def test_memory_tracking(self):
        graph = erdos_renyi_graph(30, 80, seed=3)
        config = ClusterConfig(workers=1, cores_per_worker=2)
        report = _clique_fractoid(
            FractalContext(engine=config), graph, 4
        ).execute()
        assert report.metrics.peak_enumerator_bytes > 0


class TestBatchQuantum:
    """Opt-in batching of the simulator's scheduling quantum."""

    def test_default_is_strict_interleaving(self):
        graph = erdos_renyi_graph(30, 80, seed=3)
        base = ClusterConfig(workers=2, cores_per_worker=2)
        assert base.batch_quantum == 1
        explicit = ClusterConfig(workers=2, cores_per_worker=2, batch_quantum=1)
        rep_a = _clique_fractoid(FractalContext(engine=base), graph, 3).execute()
        rep_b = _clique_fractoid(
            FractalContext(engine=explicit), graph, 3
        ).execute()
        cl_a = rep_a.steps[0].cluster
        cl_b = rep_b.steps[0].cluster
        assert rep_a.result_count == rep_b.result_count
        assert cl_a.makespan_units == cl_b.makespan_units
        assert cl_a.steal_messages == cl_b.steal_messages
        assert [
            (c.steals_internal, c.steals_external) for c in cl_a.cores
        ] == [(c.steals_internal, c.steals_external) for c in cl_b.cores]

    def test_batched_results_identical(self):
        graph = erdos_renyi_graph(30, 80, seed=3)
        rep_default = _clique_fractoid(
            FractalContext(engine=ClusterConfig(workers=2, cores_per_worker=2)),
            graph,
            3,
        ).execute()
        for quantum in (4, 64):
            config = ClusterConfig(
                workers=2, cores_per_worker=2, batch_quantum=quantum
            )
            rep = _clique_fractoid(
                FractalContext(engine=config), graph, 3
            ).execute()
            # Results and work totals never depend on the quantum; only
            # scheduling interleavings (steals, makespan) may shift.
            assert rep.result_count == rep_default.result_count
            assert (
                rep.metrics.extension_tests
                == rep_default.metrics.extension_tests
            )
            assert (
                rep.metrics.subgraphs_enumerated
                == rep_default.metrics.subgraphs_enumerated
            )

    def test_batch_quantum_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(batch_quantum=0)
