"""Tests for the QKCount-like and GraphX-like comparators."""

import pytest

from repro.baselines import (
    DistributedConfig,
    graphx_triangles,
    qkcount_cliques,
)
from repro.graph import complete_graph, erdos_renyi_graph

from conftest import brute_cliques


class TestQKCount:
    @pytest.mark.parametrize("k", [2, 3, 4, 5])
    def test_counts_match_brute_force(self, k):
        graph = erdos_renyi_graph(25, 110, seed=5)
        report = qkcount_cliques(graph, k)
        assert report.result_count == brute_cliques(graph, k)

    def test_k_validation(self):
        with pytest.raises(ValueError):
            qkcount_cliques(erdos_renyi_graph(5, 4, seed=1), 1)

    def test_rounds_grow_with_k(self):
        graph = erdos_renyi_graph(25, 110, seed=5)
        r4 = qkcount_cliques(graph, 4)
        r6 = qkcount_cliques(graph, 6)
        assert r6.details["rounds"] > r4.details["rounds"]
        assert r6.runtime_seconds > r4.runtime_seconds

    def test_io_factor_slows_runtime(self):
        graph = erdos_renyi_graph(40, 200, seed=6)
        fast = qkcount_cliques(
            graph, 4, DistributedConfig(io_factor=1.0, round_overhead_s=0.0)
        )
        slow = qkcount_cliques(
            graph, 4, DistributedConfig(io_factor=4.0, round_overhead_s=0.0)
        )
        assert slow.runtime_seconds > fast.runtime_seconds
        assert slow.result_count == fast.result_count

    def test_complete_graph(self):
        k5 = complete_graph(5)
        assert qkcount_cliques(k5, 5).result_count == 1
        assert qkcount_cliques(k5, 3).result_count == 10


class TestGraphX:
    def test_triangles_match_brute_force(self):
        graph = erdos_renyi_graph(30, 110, seed=8)
        report = graphx_triangles(graph)
        assert report.result_count == brute_cliques(graph, 3)

    def test_k4_triangles(self):
        assert graphx_triangles(complete_graph(4)).result_count == 4

    def test_more_cores_faster(self):
        graph = erdos_renyi_graph(40, 200, seed=9)
        small = graphx_triangles(
            graph, DistributedConfig(workers=1, cores_per_worker=1)
        )
        large = graphx_triangles(
            graph, DistributedConfig(workers=4, cores_per_worker=8)
        )
        assert large.runtime_seconds < small.runtime_seconds

    def test_work_units_recorded(self):
        graph = erdos_renyi_graph(30, 110, seed=8)
        report = graphx_triangles(graph)
        assert report.work_units > 0
