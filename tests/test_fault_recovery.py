"""Fault injection & recovery: validation, detection, and the core
invariant — results and aggregations are byte-identical under every
fault schedule (paper §4.1's from-scratch recovery claim)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro import ClusterConfig, FractalContext
from repro.graph import erdos_renyi_graph, powerlaw_graph
from repro.runtime.faults import (
    CoreFailure,
    FailureDetector,
    FaultPlan,
    MessageFaults,
    MpDropResult,
    MpPoisonChunk,
    MpWorkerKill,
    MpWorkerStall,
    StragglerWindow,
    WorkerFailure,
)


def _clique_fractoid(context, graph, k=3):
    fg = context.from_graph(graph)
    return (
        fg.vfractoid()
        .expand(1)
        .filter(lambda s, c: s.edges_added_last() == s.n_vertices - 1)
        .explore(k)
    )


def _census(graph, config):
    fg = FractalContext(engine=config).from_graph(graph)
    view = (
        fg.vfractoid()
        .expand(3)
        .aggregate(
            "motifs",
            key_fn=lambda s, c: s.pattern(),
            value_fn=lambda s, c: 1,
            reduce_fn=lambda a, b: a + b,
        )
        .aggregation("motifs")
    )
    return {k.canonical_code(): v for k, v in view.items()}


class TestValidation:
    def test_fail_at_core_out_of_bounds(self):
        with pytest.raises(ValueError, match="cores 0..7"):
            ClusterConfig(workers=2, cores_per_worker=4, fail_at={8: 10.0})

    def test_fail_at_negative_core(self):
        with pytest.raises(ValueError, match="fail_at names core"):
            ClusterConfig(workers=2, cores_per_worker=4, fail_at={-1: 10.0})

    def test_fail_at_negative_clock(self):
        with pytest.raises(ValueError, match="non-negative"):
            ClusterConfig(workers=1, cores_per_worker=4, fail_at={0: -5.0})

    def test_fail_at_nan_clock(self):
        with pytest.raises(ValueError, match="NaN"):
            ClusterConfig(
                workers=1, cores_per_worker=4, fail_at={0: float("nan")}
            )

    def test_fail_at_infinite_clock(self):
        with pytest.raises(ValueError, match="finite"):
            ClusterConfig(
                workers=1, cores_per_worker=4, fail_at={0: float("inf")}
            )

    def test_killing_every_core_rejected(self):
        with pytest.raises(ValueError, match="at least one core"):
            ClusterConfig(
                workers=1,
                cores_per_worker=2,
                fail_at={0: 1.0, 1: 1.0},
            )

    def test_killing_every_core_via_plan_and_fail_at(self):
        plan = FaultPlan(core_failures=(CoreFailure(0, 5.0),))
        with pytest.raises(ValueError, match="at least one core"):
            ClusterConfig(
                workers=1, cores_per_worker=2, fail_at={1: 1.0}, fault_plan=plan
            )

    def test_plan_core_out_of_bounds(self):
        plan = FaultPlan(core_failures=(CoreFailure(9, 5.0),))
        with pytest.raises(ValueError, match="cores 0..7"):
            ClusterConfig(workers=2, cores_per_worker=4, fault_plan=plan)

    def test_plan_worker_out_of_bounds(self):
        plan = FaultPlan(worker_failures=(WorkerFailure(2, 5.0),))
        with pytest.raises(ValueError, match="workers 0..1"):
            ClusterConfig(workers=2, cores_per_worker=4, fault_plan=plan)

    def test_plan_straggler_factor(self):
        plan = FaultPlan(stragglers=(StragglerWindow(0, 0.0, 10.0, factor=0.5),))
        with pytest.raises(ValueError, match="factor"):
            ClusterConfig(workers=2, cores_per_worker=4, fault_plan=plan)

    def test_plan_empty_straggler_window(self):
        plan = FaultPlan(stragglers=(StragglerWindow(0, 10.0, 10.0),))
        with pytest.raises(ValueError, match="empty"):
            ClusterConfig(workers=2, cores_per_worker=4, fault_plan=plan)

    def test_plan_drop_probability_bounds(self):
        plan = FaultPlan(message_faults=MessageFaults(drop=1.0))
        with pytest.raises(ValueError, match="drop probability"):
            ClusterConfig(workers=2, cores_per_worker=4, fault_plan=plan)

    def test_any_ws_config_accepts_failures(self):
        """The old ValueError for disabled stealing is gone for good."""
        for ws_int in (False, True):
            for ws_ext in (False, True):
                ClusterConfig(
                    workers=2,
                    cores_per_worker=2,
                    ws_internal=ws_int,
                    ws_external=ws_ext,
                    fail_at={0: 1.0},
                )


class TestDetector:
    def test_detect_at_math(self):
        detector = FailureDetector(
            heartbeat_interval_units=100.0, miss_threshold=3
        )
        # Death at 250: last heartbeat at 200, declared dead at 200 + 300.
        assert detector.detect_at(250.0) == 500.0
        assert detector.detect_at(0.0) == 300.0
        assert detector.detect_at(99.9) == 300.0

    def test_detection_metrics_recorded(self):
        graph = powerlaw_graph(80, attach=4, seed=2)
        config = ClusterConfig(
            workers=2, cores_per_worker=4, fail_at={0: 50.0, 5: 120.0}
        )
        report = _clique_fractoid(FractalContext(engine=config), graph).execute(
            collect="count"
        )
        m = report.metrics
        assert m.failures_injected == 2
        assert m.failures_detected == 2
        assert m.detection_latency_units > 0
        summary = report.recovery_summary()
        assert summary["mean_detection_latency_units"] > 0

    def test_orphans_invisible_before_detection(self):
        """Recovery work never starts before the detector's firing point."""
        graph = powerlaw_graph(80, attach=4, seed=2)
        detector = FailureDetector(
            heartbeat_interval_units=100.0, miss_threshold=3
        )
        plan = FaultPlan(core_failures=(CoreFailure(0, 50.0),), detector=detector)
        config = ClusterConfig(workers=1, cores_per_worker=2, fault_plan=plan)
        report = _clique_fractoid(FractalContext(engine=config), graph).execute(
            collect="count"
        )
        cluster = report.steps[-1].cluster
        assert cluster.failures == 1
        # The survivor outlives the detection point (300 units).
        survivor = cluster.cores[1]
        assert survivor.finish_units >= 300.0


class TestRecoveryEquivalence:
    WS = [
        (False, False),
        (True, False),
        (False, True),
        (True, True),
    ]

    @pytest.mark.parametrize("ws_int,ws_ext", WS)
    def test_counts_survive_failures_any_ws(self, ws_int, ws_ext):
        graph = powerlaw_graph(90, attach=4, seed=11)
        base = dict(
            workers=2, cores_per_worker=3, ws_internal=ws_int, ws_external=ws_ext
        )
        healthy = _clique_fractoid(
            FractalContext(engine=ClusterConfig(**base)), graph
        ).execute(collect="count")
        injected = _clique_fractoid(
            FractalContext(
                engine=ClusterConfig(**base, fail_at={0: 40.0, 4: 90.0})
            ),
            graph,
        ).execute(collect="count")
        assert injected.result_count == healthy.result_count
        assert (
            injected.metrics.subgraphs_enumerated
            == healthy.metrics.subgraphs_enumerated
        )

    def test_worker_failure_recovers(self):
        graph = powerlaw_graph(90, attach=4, seed=11)
        plan = FaultPlan(worker_failures=(WorkerFailure(1, 60.0),))
        config = ClusterConfig(workers=2, cores_per_worker=3, fault_plan=plan)
        healthy = _clique_fractoid(
            FractalContext(engine=ClusterConfig(workers=2, cores_per_worker=3)),
            graph,
        ).execute(collect="count")
        injected = _clique_fractoid(FractalContext(engine=config), graph).execute(
            collect="count"
        )
        assert injected.result_count == healthy.result_count
        cluster = injected.steps[-1].cluster
        assert cluster.failures == 3  # the whole worker died
        assert sum(1 for c in cluster.cores if c.failed) == 3

    def test_aggregations_survive_faults(self):
        graph = erdos_renyi_graph(40, 110, n_labels=3, seed=8)
        clean = _census(graph, ClusterConfig(workers=2, cores_per_worker=3))
        plan = FaultPlan.from_seed(7, 2, 3, horizon_units=500.0)
        faulty = _census(
            graph, ClusterConfig(workers=2, cores_per_worker=3, fault_plan=plan)
        )
        assert faulty == clean

    def test_message_faults_force_retries(self):
        graph = powerlaw_graph(90, attach=4, seed=11)
        plan = FaultPlan(
            core_failures=(CoreFailure(0, 30.0),),
            message_faults=MessageFaults(drop=0.5, duplicate=0.3, delay=0.4),
            seed=13,
        )
        config = ClusterConfig(
            workers=2, cores_per_worker=3, ws_internal=False, fault_plan=plan
        )
        healthy = _clique_fractoid(
            FractalContext(
                engine=ClusterConfig(
                    workers=2, cores_per_worker=3, ws_internal=False
                )
            ),
            graph,
        ).execute(collect="count")
        injected = _clique_fractoid(FractalContext(engine=config), graph).execute(
            collect="count"
        )
        assert injected.result_count == healthy.result_count
        m = injected.metrics
        assert m.steal_messages_dropped > 0
        assert m.steal_retries > 0

    def test_stragglers_slow_but_do_not_change_results(self):
        graph = powerlaw_graph(90, attach=4, seed=11)
        plan = FaultPlan(
            stragglers=(StragglerWindow(0, 0.0, 1e6, factor=8.0),)
        )
        base = ClusterConfig(workers=2, cores_per_worker=3)
        slowed = ClusterConfig(workers=2, cores_per_worker=3, fault_plan=plan)
        clean = _clique_fractoid(FractalContext(engine=base), graph).execute(
            collect="count"
        )
        straggled = _clique_fractoid(
            FractalContext(engine=slowed), graph
        ).execute(collect="count")
        assert straggled.result_count == clean.result_count
        assert straggled.metrics.failures_injected == 0

    def test_fault_runs_are_deterministic(self):
        graph = powerlaw_graph(90, attach=4, seed=11)
        plan = FaultPlan.from_seed(4, 2, 3, horizon_units=600.0)

        def run():
            config = ClusterConfig(
                workers=2, cores_per_worker=3, fault_plan=plan
            )
            return _clique_fractoid(FractalContext(engine=config), graph).execute(
                collect="count"
            )

        r1, r2 = run(), run()
        assert r1.result_count == r2.result_count
        assert r1.simulated_seconds == r2.simulated_seconds
        assert r1.metrics.snapshot() == r2.metrics.snapshot()


class TestPlanSerialization:
    def test_round_trip(self, tmp_path):
        plan = FaultPlan.from_seed(21, 2, 4)
        path = tmp_path / "plan.json"
        plan.save(str(path))
        assert FaultPlan.load(str(path)) == plan

    def test_from_dict_rejects_non_object(self):
        with pytest.raises(ValueError, match="JSON object"):
            FaultPlan.from_dict([1, 2, 3])


class TestMpPlanSections:
    """JSON round-trip and validation of the real-process fault sections."""

    def test_mp_round_trip(self, tmp_path):
        plan = FaultPlan(
            mp_worker_kills=(MpWorkerKill(worker_id=0, after_chunks=2),),
            mp_worker_stalls=(
                MpWorkerStall(worker_id=1, after_chunks=1, seconds=1.5,
                              freeze=True),
            ),
            mp_drop_results=(MpDropResult(worker_id=1, chunk_number=0),),
            mp_poison_chunks=(MpPoisonChunk(chunk_index=3),),
        )
        path = tmp_path / "mp-plan.json"
        plan.save(str(path))
        loaded = FaultPlan.load(str(path))
        assert loaded == plan
        assert loaded.has_mp_faults

    def test_seeded_mp_plan_round_trips(self, tmp_path):
        plan = FaultPlan.from_seed_mp(21, 3)
        path = tmp_path / "seeded.json"
        plan.save(str(path))
        assert FaultPlan.load(str(path)) == plan

    def test_simulator_plan_json_has_no_mp_sections(self):
        data = FaultPlan.from_seed(21, 2, 4).to_dict()
        assert not any(key.startswith("mp_") for key in data)

    def test_unknown_key_in_mp_entry_rejected(self):
        data = FaultPlan(
            mp_worker_kills=(MpWorkerKill(worker_id=0),)
        ).to_dict()
        data["mp_worker_kills"][0]["bogus"] = 1
        with pytest.raises(ValueError, match="mp_worker_kills"):
            FaultPlan.from_dict(data)

    def test_negative_chunk_index_rejected(self):
        plan = FaultPlan(mp_poison_chunks=(MpPoisonChunk(chunk_index=-1),))
        with pytest.raises(ValueError, match="non-negative"):
            plan.validate_mp(2)

    def test_negative_after_chunks_rejected(self):
        plan = FaultPlan(
            mp_worker_kills=(MpWorkerKill(worker_id=0, after_chunks=-3),)
        )
        with pytest.raises(ValueError, match="non-negative"):
            plan.validate_mp(2)

    def test_worker_id_out_of_range_rejected(self):
        plan = FaultPlan(mp_worker_kills=(MpWorkerKill(worker_id=5),))
        with pytest.raises(ValueError, match="workers 0..1"):
            plan.validate_mp(2)

    def test_killing_every_mp_worker_rejected(self):
        # Mirrors the simulator's kill-all-cores guard: one slot must
        # survive so gen-0 progress exists without leaning on respawns.
        plan = FaultPlan(
            mp_worker_kills=(
                MpWorkerKill(worker_id=0),
                MpWorkerKill(worker_id=1),
            )
        )
        with pytest.raises(ValueError, match="at least one worker slot"):
            plan.validate_mp(2)

    def test_config_validates_plan_at_construction(self):
        from repro import MultiprocessConfig

        plan = FaultPlan(
            mp_worker_kills=(
                MpWorkerKill(worker_id=0),
                MpWorkerKill(worker_id=1),
            )
        )
        with pytest.raises(ValueError, match="at least one worker slot"):
            MultiprocessConfig(num_procs=2, fault_plan=plan)


@st.composite
def chaos_case(draw):
    n = draw(st.integers(min_value=12, max_value=40))
    max_m = n * (n - 1) // 2
    m = draw(st.integers(min_value=n, max_value=min(3 * n, max_m)))
    graph_seed = draw(st.integers(min_value=0, max_value=10_000))
    workers = draw(st.integers(min_value=1, max_value=2))
    cores = draw(st.integers(min_value=2, max_value=3))
    ws_int = draw(st.booleans())
    ws_ext = draw(st.booleans())
    plan_seed = draw(st.integers(min_value=0, max_value=10_000))
    horizon = draw(st.floats(min_value=10.0, max_value=2000.0))
    return (n, m, graph_seed, workers, cores, ws_int, ws_ext, plan_seed, horizon)


class TestChaosProperty:
    @settings(max_examples=12, deadline=None)
    @given(chaos_case(), st.sampled_from(["cliques", "induced", "census"]))
    def test_results_identical_under_random_fault_plans(self, case, app):
        (
            n,
            m,
            graph_seed,
            workers,
            cores,
            ws_int,
            ws_ext,
            plan_seed,
            horizon,
        ) = case
        graph = erdos_renyi_graph(n, m, n_labels=2, seed=graph_seed)
        plan = FaultPlan.from_seed(plan_seed, workers, cores, horizon)
        base = dict(
            workers=workers,
            cores_per_worker=cores,
            ws_internal=ws_int,
            ws_external=ws_ext,
        )
        clean_cfg = ClusterConfig(**base)
        fault_cfg = ClusterConfig(**base, fault_plan=plan)
        if app == "census":
            assert _census(graph, fault_cfg) == _census(graph, clean_cfg)
            return
        if app == "cliques":
            clean = _clique_fractoid(
                FractalContext(engine=clean_cfg), graph
            ).execute(collect="count")
            faulty = _clique_fractoid(
                FractalContext(engine=fault_cfg), graph
            ).execute(collect="count")
        else:
            clean = (
                FractalContext(engine=clean_cfg)
                .from_graph(graph)
                .vfractoid()
                .expand(3)
                .execute(collect="count")
            )
            faulty = (
                FractalContext(engine=fault_cfg)
                .from_graph(graph)
                .vfractoid()
                .expand(3)
                .execute(collect="count")
            )
        assert faulty.result_count == clean.result_count
        assert (
            faulty.metrics.subgraphs_enumerated
            == clean.metrics.subgraphs_enumerated
        )
        # The detector always converges: every injected failure detected,
        # and detection latency is finite.
        m_ = faulty.metrics
        assert m_.failures_detected == m_.failures_injected
        assert math.isfinite(m_.detection_latency_units)
