"""Tests for the pattern catalog and the extra graph generators."""

import pytest

from repro import FractalContext
from repro.apps import motif_counts_ignoring_labels, motifs
from repro.graph import (
    erdos_renyi_graph,
    rmat_graph,
    watts_strogatz_graph,
)
from repro.pattern import all_connected_patterns, named_patterns


class TestPatternCatalog:
    @pytest.mark.parametrize(
        "k,expected", [(1, 1), (2, 1), (3, 2), (4, 6), (5, 21)]
    )
    def test_connected_graph_counts(self, k, expected):
        # OEIS A001349: connected graphs on k nodes.
        assert len(all_connected_patterns(k)) == expected

    def test_all_distinct(self):
        patterns = all_connected_patterns(5)
        codes = {p.canonical_code() for p in patterns}
        assert len(codes) == len(patterns)

    def test_all_connected(self):
        assert all(p.is_connected() for p in all_connected_patterns(5))

    def test_sorted_by_edges(self):
        patterns = all_connected_patterns(4)
        sizes = [p.n_edges for p in patterns]
        assert sizes == sorted(sizes)
        assert sizes[0] == 3  # trees first
        assert sizes[-1] == 6  # the clique last

    def test_validates_k(self):
        with pytest.raises(ValueError):
            all_connected_patterns(0)

    def test_custom_label(self):
        patterns = all_connected_patterns(3, label=7)
        assert all(set(p.vertex_labels) == {7} for p in patterns)

    def test_catalog_covers_motif_census(self):
        """Every motif found in a random graph is in the catalog."""
        graph = erdos_renyi_graph(25, 70, seed=3)
        census = motif_counts_ignoring_labels(
            motifs(FractalContext().from_graph(graph), 4)
        )
        catalog_codes = {
            p.canonical_code() for p in all_connected_patterns(4)
        }
        assert {p.canonical_code() for p in census} <= catalog_codes

    def test_named_patterns(self):
        catalog = named_patterns()
        assert catalog["triangle"].is_clique()
        assert catalog["diamond"].n_edges == 5
        assert catalog["house"].n_vertices == 5
        # Names map to distinct isomorphism classes.
        codes = {p.canonical_code() for p in catalog.values()}
        assert len(codes) == len(catalog)

    def test_named_patterns_with_label(self):
        catalog = named_patterns(label=2)
        assert set(catalog["square"].vertex_labels) == {2}


class TestWattsStrogatz:
    def test_shape_and_determinism(self):
        g1 = watts_strogatz_graph(50, 4, 0.1, seed=5)
        g2 = watts_strogatz_graph(50, 4, 0.1, seed=5)
        assert g1.n_vertices == 50
        assert list(g1.iter_edge_tuples()) == list(g2.iter_edge_tuples())

    def test_zero_rewire_is_ring_lattice(self):
        g = watts_strogatz_graph(20, 4, 0.0)
        assert g.n_edges == 40
        assert all(g.degree(v) == 4 for v in g.vertices())
        assert g.are_adjacent(0, 1)
        assert g.are_adjacent(0, 2)

    def test_high_clustering_vs_er(self):
        ws = watts_strogatz_graph(80, 6, 0.05, seed=7)
        er = erdos_renyi_graph(80, ws.n_edges, seed=7)
        fc = FractalContext()

        def triangles(graph):
            return (
                fc.from_graph(graph)
                .vfractoid()
                .expand(1)
                .filter(lambda s, c: s.edges_added_last() == s.n_vertices - 1)
                .explore(3)
                .count()
            )

        assert triangles(ws) > 2 * triangles(er)

    def test_validates_params(self):
        with pytest.raises(ValueError):
            watts_strogatz_graph(10, 3, 0.1)  # odd neighbors
        with pytest.raises(ValueError):
            watts_strogatz_graph(4, 4, 0.1)  # too small


class TestRMAT:
    def test_shape_and_determinism(self):
        g1 = rmat_graph(6, 120, seed=9)
        g2 = rmat_graph(6, 120, seed=9)
        assert g1.n_vertices == 64
        assert g1.n_edges <= 120
        assert g1.n_edges > 60  # most draws succeed
        assert list(g1.iter_edge_tuples()) == list(g2.iter_edge_tuples())

    def test_skewed_degrees(self):
        g = rmat_graph(8, 600, seed=10)
        degrees = sorted(g.degree(v) for v in g.vertices())
        assert degrees[-1] >= 4 * max(1, degrees[len(degrees) // 2])

    def test_validates_probabilities(self):
        with pytest.raises(ValueError):
            rmat_graph(4, 10, a=0.5, b=0.3, c=0.3)

    def test_no_self_loops_or_duplicates(self):
        g = rmat_graph(5, 80, seed=11)
        seen = set()
        for e in g.edges():
            u, v = g.edge(e)
            assert u != v
            assert (u, v) not in seen
            seen.add((u, v))
