"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "motifs"])
        assert args.dataset == "mico"
        assert args.k == 3
        assert args.workers == 1

    def test_cluster_flags(self):
        args = build_parser().parse_args(
            ["run", "cliques", "--workers", "2", "--cores", "8"]
        )
        assert args.workers == 2
        assert args.cores == 8

    def test_pattern_kernel_defaults(self):
        args = build_parser().parse_args(["run", "query"])
        assert args.pattern_kernel == "legacy"
        assert args.order_policy is None

    def test_pattern_kernel_flags(self):
        args = build_parser().parse_args(
            ["run", "query", "--pattern-kernel", "indexed",
             "--order-policy", "legacy"]
        )
        assert args.pattern_kernel == "indexed"
        assert args.order_policy == "legacy"

    def test_invalid_pattern_kernel_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "query", "--pattern-kernel", "turbo"]
            )


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets", "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "mico" in out
        assert "wikidata" in out

    def test_run_cliques(self, capsys):
        assert main(
            ["run", "cliques", "--dataset", "mico", "--scale", "0.3", "--k", "3"]
        ) == 0
        assert "3-cliques" in capsys.readouterr().out

    def test_run_motifs(self, capsys):
        assert main(
            ["run", "motifs", "--dataset", "mico", "--scale", "0.25", "--k", "3"]
        ) == 0
        assert "motifs" in capsys.readouterr().out

    def test_run_fsm(self, capsys):
        assert main(
            [
                "run", "fsm", "--dataset", "mico", "--scale", "0.3",
                "--support", "5", "--max-edges", "2",
            ]
        ) == 0
        assert "FSM" in capsys.readouterr().out

    def test_run_query(self, capsys):
        assert main(
            ["run", "query", "--dataset", "mico", "--scale", "0.3",
             "--query", "q1"]
        ) == 0
        out = capsys.readouterr().out
        assert "matches" in out
        assert "pattern kernel: legacy" in out

    def test_run_query_indexed_kernel(self, capsys):
        base = ["run", "query", "--dataset", "orkut", "--scale", "0.3",
                "--query", "q1"]
        assert main(base) == 0
        legacy_out = capsys.readouterr().out
        assert main(base + ["--pattern-kernel", "indexed"]) == 0
        indexed_out = capsys.readouterr().out
        assert "pattern kernel: indexed (order policy cost" in indexed_out
        # Same matches line under both kernels.
        assert legacy_out.splitlines()[0] == indexed_out.splitlines()[0]

    def test_run_query_indexed_on_cluster(self, capsys):
        assert main(
            ["run", "query", "--dataset", "orkut", "--scale", "0.2",
             "--query", "q1", "--workers", "2", "--cores", "2",
             "--pattern-kernel", "indexed", "--order-policy", "legacy"]
        ) == 0
        out = capsys.readouterr().out
        assert "pattern kernel: indexed (order policy legacy" in out

    def test_run_keywords(self, capsys):
        assert main(
            [
                "run", "keywords", "--dataset", "wikidata", "--scale", "0.2",
                "--words", "paris", "revolution",
            ]
        ) == 0
        assert "covers" in capsys.readouterr().out

    def test_run_keywords_requires_words(self):
        with pytest.raises(SystemExit):
            main(["run", "keywords", "--dataset", "wikidata"])

    def test_unknown_dataset(self):
        with pytest.raises(SystemExit):
            main(["run", "cliques", "--dataset", "nope"])

    def test_unknown_query(self):
        with pytest.raises(SystemExit):
            main(["run", "query", "--query", "q99", "--scale", "0.2"])

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["experiment", "nope"])

    def test_run_on_cluster(self, capsys):
        assert main(
            [
                "run", "cliques", "--dataset", "mico", "--scale", "0.3",
                "--k", "3", "--workers", "2", "--cores", "2",
            ]
        ) == 0
        assert "3-cliques" in capsys.readouterr().out


class TestFaultInjection:
    def test_inject_failures_prints_recovery(self, capsys):
        assert main(
            [
                "run", "cliques", "--dataset", "mico", "--scale", "0.3",
                "--k", "3", "--workers", "2", "--cores", "4",
                "--inject-failures", "4",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "3-cliques" in out
        assert "fault injection:" in out
        assert "recovery:" in out
        assert "steal protocol:" in out

    def test_fault_plan_file(self, capsys, tmp_path):
        from repro import FaultPlan

        path = tmp_path / "plan.json"
        FaultPlan.from_seed(4, 2, 4).save(str(path))
        assert main(
            [
                "run", "cliques", "--dataset", "mico", "--scale", "0.3",
                "--k", "3", "--workers", "2", "--cores", "4",
                "--fault-plan", str(path),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "3-cliques" in out
        assert "fault injection:" in out

    def test_fault_plan_file_missing(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot load fault plan"):
            main(
                [
                    "run", "cliques", "--workers", "2", "--cores", "2",
                    "--fault-plan", str(tmp_path / "nope.json"),
                ]
            )

    def test_inject_failures_requires_cluster(self):
        with pytest.raises(SystemExit, match="simulated cluster"):
            main(
                [
                    "run", "cliques", "--dataset", "mico", "--scale", "0.3",
                    "--inject-failures", "1",
                ]
            )

    def test_flags_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                [
                    "run", "cliques", "--inject-failures", "1",
                    "--fault-plan", "plan.json",
                ]
            )


class TestStealPolicy:
    def test_parser_default(self):
        args = build_parser().parse_args(["run", "cliques"])
        assert args.steal_policy == "one"

    def test_parser_accepts_policy(self):
        args = build_parser().parse_args(
            ["run", "cliques", "--steal-policy", "chunk:8"]
        )
        assert args.steal_policy == "chunk:8"

    def test_parser_accepts_adaptive(self):
        args = build_parser().parse_args(
            ["run", "cliques", "--steal-policy", "adaptive"]
        )
        assert args.steal_policy == "adaptive"

    def test_invalid_policy_exits(self):
        with pytest.raises(SystemExit, match="invalid cluster configuration"):
            main(
                [
                    "run", "cliques", "--dataset", "mico", "--scale", "0.3",
                    "--workers", "2", "--cores", "2",
                    "--steal-policy", "bogus",
                ]
            )

    def test_invalid_policy_error_names_adaptive(self):
        # The rejection message lists every accepted spelling, so a user
        # who typos the new policy is pointed straight at it.
        with pytest.raises(SystemExit, match="adaptive"):
            main(
                [
                    "run", "cliques", "--dataset", "mico", "--scale", "0.3",
                    "--workers", "2", "--cores", "2",
                    "--steal-policy", "bogus",
                ]
            )

    def test_adaptive_run_reports_controller(self, capsys):
        assert main(
            [
                "run", "cliques", "--dataset", "mico", "--scale", "0.3",
                "--k", "3", "--workers", "2", "--cores", "4",
                "--steal-policy", "adaptive",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "steal policy:" in out
        assert "degree adjustments" in out
        assert "cheaper-victim picks" in out

    def test_scheduler_report_printed(self, capsys):
        assert main(
            [
                "run", "cliques", "--dataset", "mico", "--scale", "0.3",
                "--k", "3", "--workers", "2", "--cores", "4",
                "--steal-policy", "half",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "scheduler:" in out
        assert "steal policy:" in out

    def test_sequential_run_skips_scheduler_report(self, capsys):
        assert main(
            ["run", "cliques", "--dataset", "mico", "--scale", "0.3", "--k", "3"]
        ) == 0
        assert "scheduler:" not in capsys.readouterr().out


class TestVersionFlag:
    def test_version_prints_package_version(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert f"repro {__version__}" in capsys.readouterr().out


class TestBackendFlags:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["run", "motifs"])
        assert args.backend == "auto"
        assert args.num_procs == 2
        assert args.partition is None

    def test_invalid_backend_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "motifs", "--backend", "spark"])

    def test_invalid_partition_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "motifs", "--partition", "metis"])

    def test_partition_requires_parallel_backend(self):
        with pytest.raises(SystemExit, match="parallel workers"):
            main(["run", "cliques", "--dataset", "mico", "--scale", "0.3",
                  "--partition", "hash"])

    def test_parser_mp_supervision_defaults(self):
        args = build_parser().parse_args(["run", "motifs"])
        assert args.worker_timeout == 30.0
        assert args.max_worker_retries == 2

    def test_rejects_zero_procs_with_value_in_message(self):
        with pytest.raises(SystemExit, match="num_procs must be >= 1, got 0"):
            main(["run", "cliques", "--dataset", "mico", "--scale", "0.3",
                  "--backend", "multiprocess", "--num-procs", "0"])

    def test_no_fork_platform_message_is_actionable(self, monkeypatch):
        import multiprocessing

        monkeypatch.setattr(
            multiprocessing, "get_all_start_methods", lambda: ["spawn"]
        )
        with pytest.warns(RuntimeWarning) as caught:
            assert main(
                ["run", "cliques", "--dataset", "mico", "--scale", "0.3",
                 "--k", "3", "--backend", "multiprocess"]
            ) == 0
        message = str(caught[0].message)
        assert "fork" in message
        assert "--backend simulator" in message

    def test_multiprocess_fault_injection(self, capsys):
        # Real-process failure injection: seeded plan, recovery printed,
        # run still succeeds with correct results.
        assert main(
            ["run", "cliques", "--dataset", "mico", "--scale", "0.3",
             "--k", "3", "--backend", "multiprocess", "--num-procs", "2",
             "--worker-timeout", "5", "--inject-failures", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "3-cliques" in out
        assert "backend: multiprocess (2 procs" in out
        assert "mp recovery:" in out

    def test_multiprocess_fault_plan_file(self, capsys, tmp_path):
        from repro.runtime.faults import FaultPlan, MpWorkerKill

        plan = FaultPlan(
            mp_worker_kills=(MpWorkerKill(worker_id=0, after_chunks=0),)
        )
        path = tmp_path / "plan.json"
        plan.save(str(path))
        assert main(
            ["run", "cliques", "--dataset", "mico", "--scale", "0.3",
             "--k", "3", "--backend", "multiprocess", "--num-procs", "2",
             "--worker-timeout", "5", "--fault-plan", str(path)]
        ) == 0
        out = capsys.readouterr().out
        assert "mp recovery:" in out
        assert "workers lost" in out

    def test_run_multiprocess(self, capsys):
        assert main(
            ["run", "cliques", "--dataset", "mico", "--scale", "0.3",
             "--k", "3", "--backend", "multiprocess", "--num-procs", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "3-cliques" in out
        assert "backend: multiprocess (2 procs" in out

    def test_run_multiprocess_partitioned(self, capsys):
        assert main(
            ["run", "cliques", "--dataset", "mico", "--scale", "0.3",
             "--k", "3", "--backend", "multiprocess", "--num-procs", "2",
             "--partition", "vertexcut"]
        ) == 0
        out = capsys.readouterr().out
        assert "partition: vertexcut x2" in out
        assert "remote adjacency:" in out

    def test_simulator_backend_partitioned(self, capsys):
        assert main(
            ["run", "cliques", "--dataset", "mico", "--scale", "0.3",
             "--k", "3", "--workers", "2", "--cores", "2",
             "--partition", "hash"]
        ) == 0
        out = capsys.readouterr().out
        assert "partition: hash x2" in out
        assert "scheduler:" in out

    def test_explicit_simulator_backend(self, capsys):
        # --backend simulator engages the cluster even at 1x1.
        assert main(
            ["run", "cliques", "--dataset", "mico", "--scale", "0.3",
             "--k", "3", "--backend", "simulator"]
        ) == 0
        assert "scheduler:" in capsys.readouterr().out
