"""Tests for automorphisms and the oracle subgraph matcher."""

from repro import Pattern
from repro.graph import complete_graph, cycle_graph, path_graph, star_graph
from repro.pattern import (
    are_isomorphic,
    automorphisms,
    count_pattern_matches,
    match_pattern,
)

from conftest import brute_cliques


class TestAutomorphisms:
    def test_clique(self):
        assert len(automorphisms(Pattern.clique(3))) == 6
        assert len(automorphisms(Pattern.clique(4))) == 24

    def test_path(self):
        assert len(automorphisms(Pattern.from_edge_list([(0, 1), (1, 2)]))) == 2

    def test_star(self):
        p = Pattern.from_edge_list([(0, 1), (0, 2), (0, 3)])
        assert len(automorphisms(p)) == 6  # 3! leaf permutations

    def test_cycle(self):
        p = Pattern.from_edge_list([(0, 1), (1, 2), (2, 3), (3, 0)])
        assert len(automorphisms(p)) == 8  # dihedral group D4

    def test_labels_restrict_group(self):
        p = Pattern([0, 1, 0], [(0, 1, 0), (1, 2, 0)])
        assert len(automorphisms(p)) == 2
        p2 = Pattern([0, 1, 2], [(0, 1, 0), (1, 2, 0)])
        assert len(automorphisms(p2)) == 1

    def test_identity_always_present(self):
        p = Pattern.from_edge_list([(0, 1), (1, 2), (2, 3)])
        assert tuple(range(4)) in automorphisms(p)


class TestAreIsomorphic:
    def test_same_shape(self):
        p1 = Pattern.from_edge_list([(0, 1), (1, 2), (2, 0)])
        p2 = Pattern.from_edge_list([(2, 0), (0, 1), (1, 2)])
        assert are_isomorphic(p1, p2)

    def test_different_shape(self):
        assert not are_isomorphic(
            Pattern.clique(3), Pattern.from_edge_list([(0, 1), (1, 2)])
        )


class TestMatchPattern:
    def test_triangles_in_k4(self):
        assert count_pattern_matches(Pattern.clique(3), complete_graph(4)) == 4

    def test_cliques_match_brute_force(self, small_random_graph):
        unlabeled = Pattern.clique(3)
        # Graph has labels 0/1; erase by matching each label combination is
        # avoided by using a single-label graph here.
        from repro.graph import erdos_renyi_graph

        g = erdos_renyi_graph(25, 70, seed=11)
        assert count_pattern_matches(unlabeled, g) == brute_cliques(g, 3)

    def test_path_matches_in_star(self):
        # P3 instances in a star with 4 leaves: C(4,2) = 6.
        star = star_graph(4)
        p3 = Pattern.from_edge_list([(0, 1), (1, 2)])
        assert count_pattern_matches(p3, star) == 6

    def test_non_distinct_counts_all_isomorphisms(self):
        star = star_graph(4)
        p3 = Pattern.from_edge_list([(0, 1), (1, 2)])
        all_isos = sum(1 for _ in match_pattern(p3, star, distinct=False))
        assert all_isos == 12  # 6 instances x 2 automorphisms

    def test_induced_matching(self):
        # C4 contains P3 non-induced instances whose endpoints are
        # non-adjacent — induced matching must still accept those, but an
        # induced triangle query on C4 finds nothing.
        square = cycle_graph(4)
        assert count_pattern_matches(Pattern.clique(3), square, induced=True) == 0
        p3 = Pattern.from_edge_list([(0, 1), (1, 2)])
        assert count_pattern_matches(p3, square, induced=True) == 4

    def test_induced_rejects_extra_edges(self):
        k4 = complete_graph(4)
        p3 = Pattern.from_edge_list([(0, 1), (1, 2)])
        assert count_pattern_matches(p3, k4, induced=True) == 0
        assert count_pattern_matches(p3, k4, induced=False) == 12

    def test_labels_respected(self):
        graph = path_graph(3, labels=[1, 2, 1])
        match_p = Pattern([1, 2], [(0, 1, 0)])
        assert count_pattern_matches(match_p, graph) == 2
        miss_p = Pattern([2, 2], [(0, 1, 0)])
        assert count_pattern_matches(miss_p, graph) == 0

    def test_embeddings_are_valid(self):
        g = complete_graph(5)
        p = Pattern.clique(3)
        for embedding in match_pattern(p, g):
            assert len(set(embedding)) == 3
            for a, b, _ in p.edges:
                assert g.are_adjacent(embedding[a], embedding[b])
