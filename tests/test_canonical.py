"""Tests for Arabesque-style canonical extension checking."""

import random
from itertools import permutations

from repro.graph import erdos_renyi_graph
from repro.pattern import edge_adjacency, is_canonical_extension, vertex_adjacency


class TestCanonicalRule:
    def test_empty_prefix_always_canonical(self):
        assert is_canonical_extension([], 5, lambda a, b: True)

    def test_smaller_than_first_rejected(self):
        adjacent = lambda a, b: True  # noqa: E731
        assert not is_canonical_extension([3], 1, adjacent)

    def test_requires_connection(self):
        adjacent = lambda a, b: False  # noqa: E731
        assert not is_canonical_extension([1], 2, adjacent)

    def test_unique_generation_order(self):
        # For every connected vertex set of a random graph, exactly one
        # addition order passes the canonicality checks.
        graph = erdos_renyi_graph(12, 25, seed=4)
        adjacent = vertex_adjacency(graph)
        rng = random.Random(7)
        tested = 0
        for _ in range(300):
            size = rng.randint(2, 4)
            start = rng.randrange(graph.n_vertices)
            members = {start}
            while len(members) < size:
                frontier = {
                    u
                    for v in members
                    for u in graph.neighbors(v)
                    if u not in members
                }
                if not frontier:
                    break
                members.add(rng.choice(sorted(frontier)))
            if len(members) != size:
                continue
            tested += 1
            canonical_orders = 0
            for order in permutations(sorted(members)):
                ok = True
                for i in range(1, size):
                    if not is_canonical_extension(order[:i], order[i], adjacent):
                        ok = False
                        break
                if ok:
                    canonical_orders += 1
            assert canonical_orders == 1, sorted(members)
        assert tested > 50

    def test_unique_generation_order_edges(self):
        graph = erdos_renyi_graph(10, 20, seed=6)
        adjacent = edge_adjacency(graph)
        rng = random.Random(8)
        tested = 0
        for _ in range(200):
            size = rng.randint(2, 3)
            start = rng.randrange(graph.n_edges)
            members = {start}
            while len(members) < size:
                frontier = set()
                for e in members:
                    for endpoint in graph.edge(e):
                        for eid in graph.incident_edges(endpoint):
                            if eid not in members:
                                frontier.add(eid)
                if not frontier:
                    break
                members.add(rng.choice(sorted(frontier)))
            if len(members) != size:
                continue
            tested += 1
            canonical_orders = sum(
                1
                for order in permutations(sorted(members))
                if all(
                    is_canonical_extension(order[:i], order[i], adjacent)
                    for i in range(1, size)
                )
            )
            assert canonical_orders == 1, sorted(members)
        assert tested > 50

    def test_first_word_must_be_minimum(self):
        # The only passing order starts at the smallest id; directly check
        # that orders starting elsewhere fail.
        adjacent = lambda a, b: True  # noqa: E731
        assert is_canonical_extension([2], 5, adjacent)
        assert not is_canonical_extension([5], 2, adjacent)

    def test_late_small_word_rejected(self):
        # words [1, 4]; extension 2 adjacent to 1 but 4 > 2 follows the
        # first neighbor -> 2 should have been added before 4.
        def adjacent(a, b):
            return {a, b} in ({1, 2}, {1, 4}, {2, 4})

        assert not is_canonical_extension([1, 4], 2, adjacent)

    def test_late_small_word_accepted_when_connected_late(self):
        # words [1, 4]; extension 2 adjacent only to 4: first neighbor is
        # at the last position, nothing follows it -> canonical.
        def adjacent(a, b):
            return {a, b} in ({1, 4}, {4, 2})

        assert is_canonical_extension([1, 4], 2, adjacent)
