"""Tests for extension strategies and the SubgraphEnumerator structure."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import FractalContext, Pattern
from repro.core import (
    EdgeInducedStrategy,
    PatternInducedStrategy,
    SubgraphEnumerator,
    VertexInducedStrategy,
    matching_order,
)
from repro.graph import erdos_renyi_graph, path_graph, star_graph
from repro.pattern import PatternInterner
from repro.runtime import Metrics

from conftest import (
    brute_connected_edge_subgraphs,
    brute_connected_induced,
)


def _enumerate_all(strategy, max_depth):
    """Exhaustive DFS over a strategy: returns frozensets of words."""
    subgraph = strategy.make_subgraph()
    strategy.reset_state()
    results = []

    def recurse(depth):
        if depth == max_depth:
            if strategy.mode == "edge":
                results.append(frozenset(subgraph.edges))
            else:
                results.append(frozenset(subgraph.vertices))
            return
        for word in strategy.extensions(subgraph):
            strategy.push(subgraph, word)
            recurse(depth + 1)
            strategy.pop(subgraph)

    recurse(0)
    return results


class TestVertexInducedStrategy:
    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_counts_match_brute_force(self, k):
        graph = erdos_renyi_graph(18, 40, seed=2)
        strategy = VertexInducedStrategy(graph, Metrics(), PatternInterner())
        results = _enumerate_all(strategy, k)
        assert len(results) == brute_connected_induced(graph, k)

    def test_no_duplicates(self):
        graph = erdos_renyi_graph(15, 35, seed=3)
        strategy = VertexInducedStrategy(graph, Metrics(), PatternInterner())
        results = _enumerate_all(strategy, 3)
        assert len(results) == len(set(results))

    def test_extension_cost_counted(self):
        graph = erdos_renyi_graph(15, 35, seed=3)
        metrics = Metrics()
        strategy = VertexInducedStrategy(graph, metrics, PatternInterner())
        _enumerate_all(strategy, 2)
        assert metrics.extension_tests > 0
        assert metrics.extensions_generated > 0

    def test_push_collects_induced_edges(self, triangle_graph):
        strategy = VertexInducedStrategy(
            triangle_graph, Metrics(), PatternInterner()
        )
        subgraph = strategy.make_subgraph()
        strategy.push(subgraph, 0)
        strategy.push(subgraph, 1)
        strategy.push(subgraph, 2)
        assert subgraph.n_edges == 3  # all triangle edges materialized


class TestEdgeInducedStrategy:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_counts_match_brute_force(self, k):
        graph = erdos_renyi_graph(14, 26, seed=5)
        strategy = EdgeInducedStrategy(graph, Metrics(), PatternInterner())
        results = _enumerate_all(strategy, k)
        assert len(results) == brute_connected_edge_subgraphs(graph, k)

    def test_no_duplicates(self):
        graph = erdos_renyi_graph(14, 26, seed=5)
        strategy = EdgeInducedStrategy(graph, Metrics(), PatternInterner())
        results = _enumerate_all(strategy, 3)
        assert len(results) == len(set(results))


class TestPatternInducedStrategy:
    def test_rejects_disconnected_pattern(self):
        graph = erdos_renyi_graph(10, 15, seed=1)
        bad = Pattern([0, 0, 0], [(0, 1, 0)])
        with pytest.raises(ValueError):
            PatternInducedStrategy(graph, Metrics(), PatternInterner(), bad)

    def test_word_limit(self):
        graph = erdos_renyi_graph(10, 15, seed=1)
        strategy = PatternInducedStrategy(
            graph, Metrics(), PatternInterner(), Pattern.clique(3)
        )
        assert strategy.word_count_limit() == 3

    def test_star_counts(self):
        star = star_graph(5)
        p3 = Pattern.from_edge_list([(0, 1), (1, 2)])
        strategy = PatternInducedStrategy(star, Metrics(), PatternInterner(), p3)
        results = _enumerate_all(strategy, 3)
        assert len(results) == 10  # C(5, 2) paths through the hub

    def test_label_filtering(self):
        graph = path_graph(4, labels=[1, 2, 2, 1])
        query = Pattern([1, 2], [(0, 1, 0)])
        strategy = PatternInducedStrategy(
            graph, Metrics(), PatternInterner(), query
        )
        results = _enumerate_all(strategy, 2)
        assert len(results) == 2  # edges (0,1) and (2,3)

    def test_extensions_exhausted_beyond_pattern(self, triangle_graph):
        strategy = PatternInducedStrategy(
            triangle_graph, Metrics(), PatternInterner(), Pattern.clique(3)
        )
        subgraph = strategy.make_subgraph()
        for word in (0, 1, 2):
            strategy.push(subgraph, word)
        assert strategy.extensions(subgraph) == []


class TestMatchingOrder:
    def test_connected_order(self):
        p = Pattern.from_edge_list([(0, 1), (1, 2), (2, 3)])
        order = matching_order(p)
        placed = {order[0]}
        for v in order[1:]:
            assert any(p.are_adjacent(v, u) for u in placed)
            placed.add(v)

    def test_starts_at_max_degree(self):
        p = Pattern.from_edge_list([(0, 1), (0, 2), (0, 3)])
        assert matching_order(p)[0] == 0

    def test_covers_all_vertices(self):
        p = Pattern.clique(5)
        assert sorted(matching_order(p)) == [0, 1, 2, 3, 4]


class TestSubgraphEnumerator:
    def test_take_consumes_in_order(self):
        enum = SubgraphEnumerator((1, 2), [10, 11, 12])
        assert enum.has_next()
        assert enum.remaining() == 3
        assert enum.take() == 10
        assert enum.take() == 11
        assert enum.remaining() == 1

    def test_steal_takes_from_tail(self):
        enum = SubgraphEnumerator((), [10, 11, 12])
        assert enum.take() == 10
        assert enum.steal_one() == 12
        assert enum.remaining() == 1
        assert enum.take() == 11
        assert enum.steal_one() is None

    def test_stealable_flag(self):
        private = SubgraphEnumerator((), [1], stealable=False)
        assert not private.stealable
        assert SubgraphEnumerator((), [1]).stealable


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=5, max_value=14),
    st.integers(min_value=0, max_value=5000),
    st.integers(min_value=2, max_value=3),
)
def test_vertex_enumeration_completeness_property(n, seed, k):
    """Canonical enumeration visits every connected induced subgraph once."""
    m = min(n * 2, n * (n - 1) // 2)
    graph = erdos_renyi_graph(n, m, seed=seed)
    strategy = VertexInducedStrategy(graph, Metrics(), PatternInterner())
    results = _enumerate_all(strategy, k)
    assert len(results) == len(set(results))
    assert len(results) == brute_connected_induced(graph, k)
