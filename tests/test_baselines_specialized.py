"""Tests for SEED, ScaleMine, MRSUB, GraphFrames and single-thread baselines."""

import pytest

from repro import FractalContext, Pattern
from repro.apps import QUERY_PATTERNS, fsm, motifs_fractoid, query_fractoid
from repro.baselines import (
    GraphFramesConfig,
    MRSubConfig,
    ScaleMineConfig,
    WorkCounter,
    count_embeddings,
    decompose_pattern,
    enumerate_embeddings,
    grami_fsm,
    graphframes_cliques,
    graphframes_triangles,
    gtries_cliques,
    gtries_motifs,
    kclist_cliques,
    mrsub_motifs,
    neo4j_triangles,
    scalemine_fsm,
    seed_query,
    singlethread_query,
)
from repro.graph import erdos_renyi_graph, star_graph

from conftest import brute_cliques, brute_motif_census


class TestMatchwork:
    def test_counts_all_isomorphisms(self):
        star = star_graph(4)
        p3 = Pattern.from_edge_list([(0, 1), (1, 2)])
        counter = WorkCounter()
        assert count_embeddings(star, p3, counter, distinct=False) == 12
        assert counter.tests > 0
        assert counter.embeddings == 12

    def test_distinct_counts_instances(self):
        star = star_graph(4)
        p3 = Pattern.from_edge_list([(0, 1), (1, 2)])
        assert count_embeddings(star, p3, distinct=True) == 6

    def test_limit_stops_early(self):
        graph = erdos_renyi_graph(30, 100, seed=3)
        p = Pattern.clique(3)
        counter_all = WorkCounter()
        total = count_embeddings(graph, p, counter_all, distinct=True)
        counter_limited = WorkCounter()
        limited = count_embeddings(
            graph, p, counter_limited, distinct=True, limit=2
        )
        assert total > 2
        assert limited == 2
        assert counter_limited.tests < counter_all.tests

    def test_embeddings_valid(self):
        graph = erdos_renyi_graph(20, 60, seed=4)
        p = QUERY_PATTERNS["q3"]
        counter = WorkCounter()
        for embedding in enumerate_embeddings(graph, p, counter):
            for a, b, _ in p.edges:
                assert graph.are_adjacent(embedding[a], embedding[b])


class TestSeed:
    def test_small_patterns_direct(self):
        assert decompose_pattern(Pattern.clique(3)) is None

    def test_decomposition_valid(self):
        for name in ("q4", "q5", "q6", "q7", "q8"):
            pattern = QUERY_PATTERNS[name]
            halves = decompose_pattern(pattern)
            if halves is None:
                continue
            half1, half2 = halves
            assert half1.pattern.is_connected()
            assert half2.pattern.is_connected()
            assert half1.pattern.n_edges + half2.pattern.n_edges == \
                pattern.n_edges
            assert set(half1.to_query) & set(half2.to_query)

    @pytest.mark.parametrize("name", ["q1", "q2", "q3", "q4", "q6", "q7", "q8"])
    def test_counts_match_fractal(self, name):
        graph = erdos_renyi_graph(25, 85, seed=5)
        pattern = QUERY_PATTERNS[name]
        fractal = query_fractoid(
            FractalContext().from_graph(graph), pattern
        ).count()
        report = seed_query(graph, pattern)
        assert report.result_count == fractal

    def test_q7_uses_join_plan(self):
        report = seed_query(
            erdos_renyi_graph(25, 85, seed=5), QUERY_PATTERNS["q7"]
        )
        assert report.details["plan"] == "join"


class TestScaleMineAndGrami:
    @pytest.mark.parametrize("seed", [9, 21])
    def test_same_frequent_set_as_fractal(self, seed):
        graph = erdos_renyi_graph(30, 60, n_labels=2, seed=seed)
        reference = {
            p.canonical_code()
            for p in fsm(
                FractalContext().from_graph(graph), min_support=4, max_edges=3
            ).frequent
        }
        grami = {p.canonical_code() for p in grami_fsm(graph, 4, 3).result}
        scale = {p.canonical_code() for p in scalemine_fsm(graph, 4, 3).result}
        assert grami == reference
        assert scale == reference

    def test_scalemine_details(self):
        graph = erdos_renyi_graph(30, 60, n_labels=2, seed=9)
        report = scalemine_fsm(graph, 4, 3)
        assert report.details["candidates"] >= 0
        assert report.details["phase1_units"] > 0
        assert report.runtime_seconds >= ScaleMineConfig().phase1_overhead_s

    def test_grami_early_termination_saves_work(self):
        graph = erdos_renyi_graph(40, 120, n_labels=1, seed=7)
        low = grami_fsm(graph, 2, 2)
        high = grami_fsm(graph, 60, 2)
        # A low threshold saturates domains quickly; a high threshold
        # forces full enumeration per candidate.
        assert low.work_units < high.work_units


class TestMRSub:
    def test_census_matches(self):
        graph = erdos_renyi_graph(25, 60, n_labels=2, seed=4)
        report = mrsub_motifs(graph, 3)
        assert not report.oom
        census = {p.canonical_code(): c for p, c in report.result.items()}
        assert census == brute_motif_census(graph, 3)

    def test_oom_on_small_budget(self):
        graph = erdos_renyi_graph(40, 140, seed=5)
        report = mrsub_motifs(
            graph, 4, MRSubConfig(memory_budget_bytes=2_000)
        )
        assert report.oom

    def test_slower_than_fractal_shape(self):
        # MRSUB materializes duplicated rows; Fractal enumerates once.
        graph = erdos_renyi_graph(30, 80, n_labels=1, seed=6)
        mrsub = mrsub_motifs(graph, 3)
        fractal = motifs_fractoid(
            FractalContext().from_graph(graph), 3
        ).execute(collect=None)
        assert mrsub.work_units > fractal.metrics.extension_tests


class TestGraphFrames:
    def test_triangles_match(self):
        graph = erdos_renyi_graph(30, 110, seed=8)
        report = graphframes_triangles(graph)
        assert report.result_count == brute_cliques(graph, 3)

    @pytest.mark.parametrize("k", [3, 4])
    def test_cliques_match(self, k):
        graph = erdos_renyi_graph(25, 110, seed=5)
        report = graphframes_cliques(graph, k)
        assert report.result_count == brute_cliques(graph, k)

    def test_oom_on_small_budget(self):
        graph = erdos_renyi_graph(40, 200, seed=9)
        report = graphframes_cliques(
            graph, 4, GraphFramesConfig(memory_budget_bytes=500)
        )
        assert report.oom

    def test_validates_k(self):
        with pytest.raises(ValueError):
            graphframes_cliques(erdos_renyi_graph(5, 4, seed=1), 1)


class TestSingleThread:
    def test_gtries_motifs_census(self):
        graph = erdos_renyi_graph(25, 60, n_labels=2, seed=4)
        report = gtries_motifs(graph, 3)
        census = {p.canonical_code(): c for p, c in report.result.items()}
        assert census == brute_motif_census(graph, 3)

    @pytest.mark.parametrize("k", [3, 4])
    def test_clique_counters_agree(self, k):
        graph = erdos_renyi_graph(25, 110, seed=5)
        expected = brute_cliques(graph, k)
        assert gtries_cliques(graph, k).result_count == expected
        assert kclist_cliques(graph, k).result_count == expected

    def test_neo4j_triangles(self):
        graph = erdos_renyi_graph(30, 110, seed=8)
        assert neo4j_triangles(graph).result_count == brute_cliques(graph, 3)

    def test_singlethread_query(self):
        graph = erdos_renyi_graph(25, 85, seed=5)
        pattern = QUERY_PATTERNS["q2"]
        fractal = query_fractoid(
            FractalContext().from_graph(graph), pattern
        ).count()
        assert singlethread_query(graph, pattern).result_count == fractal

    def test_specialized_rate_faster_than_framework(self):
        # The same work takes less time at the specialized rate — the
        # asymmetry the COST figure measures.
        from repro.runtime import DEFAULT_COST_MODEL

        units = 1_000_000
        assert DEFAULT_COST_MODEL.specialized_seconds(units) < \
            DEFAULT_COST_MODEL.seconds(units)
