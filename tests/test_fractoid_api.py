"""Tests for the fractoid API: chaining, outputs, caching, explore."""

import pytest

from repro import FractalContext, Pattern
from repro.core import Expand, Filter

from conftest import brute_cliques, brute_connected_induced


class TestChaining:
    def test_fractoids_are_immutable(self, context, small_random_graph):
        fg = context.from_graph(small_random_graph)
        base = fg.vfractoid()
        extended = base.expand(2)
        assert len(base.primitives) == 0
        assert len(extended.primitives) == 2

    def test_expand_validates(self, context, small_random_graph):
        fg = context.from_graph(small_random_graph)
        with pytest.raises(ValueError):
            fg.vfractoid().expand(0)

    def test_explore_multiplies_fragment(self, context, small_random_graph):
        fg = context.from_graph(small_random_graph)
        fragment = fg.vfractoid().expand(1).filter(lambda s, c: True)
        explored = fragment.explore(3)
        assert len(explored.primitives) == 6
        kinds = [type(p) for p in explored.primitives]
        assert kinds == [Expand, Filter] * 3

    def test_explore_clones_uids(self, context, small_random_graph):
        fg = context.from_graph(small_random_graph)
        explored = fg.vfractoid().expand(1).explore(2)
        uids = [p.uid for p in explored.primitives]
        assert len(set(uids)) == len(uids)

    def test_explore_validates(self, context, small_random_graph):
        fg = context.from_graph(small_random_graph)
        with pytest.raises(ValueError):
            fg.vfractoid().expand(1).explore(0)

    def test_repr_shows_workflow(self, context, small_random_graph):
        fg = context.from_graph(small_random_graph)
        frac = fg.vfractoid().expand(1).filter(lambda s, c: True)
        assert "EF" in repr(frac)


class TestOutputs:
    def test_count_equals_len_subgraphs(self, context, small_random_graph):
        fg = context.from_graph(small_random_graph)
        frac = fg.vfractoid().expand(2)
        assert frac.count() == len(frac.subgraphs())

    def test_subgraphs_are_frozen_and_distinct(self, context, small_random_graph):
        fg = context.from_graph(small_random_graph)
        results = fg.vfractoid().expand(2).subgraphs()
        assert len(set(results)) == len(results)
        assert all(len(r.vertices) == 2 for r in results)

    def test_count_matches_brute_force(self, context, small_random_graph):
        fg = context.from_graph(small_random_graph)
        assert fg.vfractoid().expand(3).count() == brute_connected_induced(
            small_random_graph, 3
        )

    def test_aggregation_output(self, context, small_random_graph):
        fg = context.from_graph(small_random_graph)
        counts = (
            fg.vfractoid()
            .expand(2)
            .aggregate(
                "edges",
                key_fn=lambda s, c: "total",
                value_fn=lambda s, c: 1,
                reduce_fn=lambda a, b: a + b,
            )
            .aggregation("edges")
        )
        assert counts["total"] == small_random_graph.n_edges

    def test_aggregation_unknown_name(self, context, small_random_graph):
        fg = context.from_graph(small_random_graph)
        frac = fg.vfractoid().expand(1)
        with pytest.raises(KeyError):
            frac.aggregation("missing")

    def test_execute_report(self, context, small_random_graph):
        fg = context.from_graph(small_random_graph)
        report = fg.vfractoid().expand(2).execute(collect="count")
        assert report.result_count == small_random_graph.n_edges
        assert report.metrics.extension_tests > 0
        assert report.simulated_seconds > 0
        assert len(report.steps) == 1

    def test_local_filter(self, context, small_random_graph):
        fg = context.from_graph(small_random_graph)
        clique3 = (
            fg.vfractoid()
            .expand(1)
            .filter(lambda s, c: s.edges_added_last() == s.n_vertices - 1)
            .explore(3)
        )
        assert clique3.count() == brute_cliques(small_random_graph, 3)


class TestAggregationCaching:
    def test_cache_reused_across_derived_fractoids(
        self, context, small_random_graph
    ):
        fg = context.from_graph(small_random_graph)
        base = fg.vfractoid().expand(1).aggregate(
            "seen",
            key_fn=lambda s, c: "n",
            value_fn=lambda s, c: 1,
            reduce_fn=lambda a, b: a + b,
        )
        first = base.aggregation("seen")
        assert first["n"] == small_random_graph.n_vertices
        # A derived fractoid's step planning sees the cached aggregation:
        # only one step runs and the earlier aggregate is not recomputed.
        derived = base.filter_agg("seen", lambda s, v: True).expand(1)
        report = derived.execute(collect="count")
        assert len(report.steps) == 1

    def test_clear_cache_forces_recomputation(self, context, small_random_graph):
        fg = context.from_graph(small_random_graph)
        base = fg.vfractoid().expand(1).aggregate(
            "seen",
            key_fn=lambda s, c: "n",
            value_fn=lambda s, c: 1,
            reduce_fn=lambda a, b: a + b,
        )
        base.aggregation("seen")
        context.clear_cache()
        assert not context.aggregation_cache
        assert base.aggregation("seen")["n"] == small_random_graph.n_vertices

    def test_sync_point_creates_two_steps(self, context, small_random_graph):
        fg = context.from_graph(small_random_graph)
        workflow = (
            fg.vfractoid()
            .expand(1)
            .aggregate(
                "deg",
                key_fn=lambda s, c: s.vertices[0],
                value_fn=lambda s, c: 1,
                reduce_fn=lambda a, b: a + b,
            )
            .filter_agg("deg", lambda s, v: v.contains(s.vertices[0]))
            .expand(1)
        )
        report = workflow.execute(collect="count")
        assert len(report.steps) == 2


class TestPatternFractoid:
    def test_pattern_query(self, context, small_random_graph):
        fg = context.from_graph(small_random_graph)
        # Use the actual labels present: query single-label-pair edges.
        pattern = Pattern([0, 0], [(0, 1, 0)])
        count = fg.pfractoid(pattern).expand(2).count()
        expected = sum(
            1
            for e in small_random_graph.edges()
            if small_random_graph.vertex_label(small_random_graph.edge(e)[0]) == 0
            and small_random_graph.vertex_label(small_random_graph.edge(e)[1]) == 0
        )
        assert count == expected


class TestGraphReductionOperators:
    def test_vfilter_materializes(self, context, small_random_graph):
        fg = context.from_graph(small_random_graph)
        reduced = fg.vfilter(lambda v, g: v < 15)
        assert reduced.graph.n_vertices == 15
        assert reduced.context is context

    def test_efilter_materializes(self, context, small_random_graph):
        fg = context.from_graph(small_random_graph)
        reduced = fg.efilter(lambda e, g: e % 2 == 0)
        assert reduced.graph.n_edges == (small_random_graph.n_edges + 1) // 2


class TestContext:
    def test_loaders(self, tmp_path, labeled_graph, context):
        from repro.graph import save_adjacency_list, save_edge_list

        adj = str(tmp_path / "g.adj")
        el = str(tmp_path / "g.el")
        save_adjacency_list(labeled_graph, adj)
        save_edge_list(labeled_graph, el)
        assert context.adjacency_list(adj).graph.n_edges == labeled_graph.n_edges
        assert context.edge_list(el).graph.n_edges == labeled_graph.n_edges

    def test_stop_clears(self, context, small_random_graph):
        fg = context.from_graph(small_random_graph)
        fg.vfractoid().expand(1).aggregate(
            "x",
            key_fn=lambda s, c: 0,
            value_fn=lambda s, c: 1,
            reduce_fn=lambda a, b: a + b,
        ).aggregation("x")
        context.stop()
        assert not context.aggregation_cache
