"""Tests for partitioned graph storage (hash and greedy vertex-cut)."""

import pytest

from repro.graph import (
    GraphError,
    GraphPartition,
    PARTITION_STRATEGIES,
    community_graph,
    edges_of_part,
    erdos_renyi_graph,
    hash_partition,
    partition_graph,
    vertexcut_partition,
)

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised only without hypothesis
    HAVE_HYPOTHESIS = False


@pytest.fixture(params=PARTITION_STRATEGIES)
def strategy(request):
    return request.param


class TestPartitionValidity:
    def test_every_vertex_assigned(self, small_random_graph, strategy):
        part = partition_graph(small_random_graph, strategy, 4)
        assert isinstance(part, GraphPartition)
        for v in small_random_graph.vertices():
            assert 0 <= part.part_of(v) < 4

    def test_part_sizes_sum_to_n(self, small_random_graph, strategy):
        part = partition_graph(small_random_graph, strategy, 3)
        assert sum(part.part_sizes()) == small_random_graph.n_vertices

    def test_single_part_is_trivial(self, small_random_graph, strategy):
        part = partition_graph(small_random_graph, strategy, 1)
        assert part.cut_edges(small_random_graph) == 0
        assert part.part_sizes() == [small_random_graph.n_vertices]

    def test_deterministic(self, small_random_graph, strategy):
        a = partition_graph(small_random_graph, strategy, 4)
        b = partition_graph(small_random_graph, strategy, 4)
        assert list(a.owner) == list(b.owner)

    def test_unknown_strategy_rejected(self, small_random_graph):
        with pytest.raises(GraphError):
            partition_graph(small_random_graph, "metis", 2)

    def test_bad_part_count_rejected(self, small_random_graph):
        with pytest.raises(GraphError):
            partition_graph(small_random_graph, "hash", 0)


class TestBalance:
    def test_vertexcut_respects_capacity_slack(self):
        graph = erdos_renyi_graph(120, 400, n_labels=2, seed=5)
        part = vertexcut_partition(graph, 4)
        capacity = 1.1 * graph.n_vertices / 4
        assert max(part.part_sizes()) <= capacity + 1

    def test_hash_is_roughly_balanced(self):
        graph = erdos_renyi_graph(200, 400, seed=9)
        part = hash_partition(graph, 4)
        sizes = part.part_sizes()
        assert min(sizes) > 0
        assert max(sizes) / (graph.n_vertices / 4) < 1.5

    def test_summary_fields(self, small_random_graph, strategy):
        summary = partition_graph(small_random_graph, strategy, 4).summary(
            small_random_graph
        )
        assert summary["strategy"] == strategy
        assert summary["n_parts"] == 4
        assert 0.0 <= summary["cut_fraction"] <= 1.0
        assert summary["balance"] >= 1.0


class TestEdgesOfPart:
    def _edge_multiset(self, graph):
        return sorted(
            tuple(sorted(graph.edge(e))) + (graph.edge_label(e),)
            for e in graph.edges()
        )

    def test_exact_cover(self, small_random_graph, strategy):
        """Each edge lands in exactly one part: the owner of its source."""
        graph = small_random_graph
        part = partition_graph(graph, strategy, 3)
        seen = []
        for p in range(3):
            local = edges_of_part(graph, part, p)
            for e in local:
                assert part.part_of(graph.edge(e)[0]) == p
            seen.extend(local)
        assert sorted(seen) == list(graph.edges())

    def test_reassembly_preserves_edge_multiset(self, strategy):
        graph = community_graph(3, 12, p_in=0.4, p_out=0.05, seed=11)
        part = partition_graph(graph, strategy, 4)
        reassembled = sorted(
            tuple(sorted(graph.edge(e))) + (graph.edge_label(e),)
            for p in range(4)
            for e in edges_of_part(graph, part, p)
        )
        assert reassembled == self._edge_multiset(graph)

    if HAVE_HYPOTHESIS:

        @given(
            n=st.integers(min_value=1, max_value=40),
            m=st.integers(min_value=0, max_value=80),
            n_parts=st.integers(min_value=1, max_value=6),
            seed=st.integers(min_value=0, max_value=1000),
            strat=st.sampled_from(PARTITION_STRATEGIES),
        )
        @settings(max_examples=40, deadline=None)
        def test_property_partition_reassemble(self, n, m, n_parts, seed, strat):
            m = min(m, n * (n - 1) // 2)
            graph = erdos_renyi_graph(n, m, n_labels=2, seed=seed)
            part = partition_graph(graph, strat, n_parts)
            reassembled = sorted(
                tuple(sorted(graph.edge(e))) + (graph.edge_label(e),)
                for p in range(n_parts)
                for e in edges_of_part(graph, part, p)
            )
            assert reassembled == self._edge_multiset(graph)
            assert sum(part.part_sizes()) == graph.n_vertices


class TestStrategiesDiffer:
    def test_vertexcut_cuts_fewer_community_edges(self):
        """On a community graph the greedy vertex-cut must beat hashing."""
        graph = community_graph(4, 16, p_in=0.3, p_out=0.02, seed=7)
        hash_cut = hash_partition(graph, 4).summary(graph)["cut_fraction"]
        vc_cut = vertexcut_partition(graph, 4).summary(graph)["cut_fraction"]
        assert vc_cut < hash_cut

    def test_word_owner_edge_mode_follows_source(self, small_random_graph):
        graph = small_random_graph
        part = partition_graph(graph, "hash", 3)
        owner = part.word_owner(graph, "edge")
        for e in graph.edges():
            assert owner(e) == part.part_of(graph.edge(e)[0])
