"""Fault tolerance of the real-parallelism backend.

The invariant under test is the multiprocess analogue of the paper's
from-scratch recovery claim: under any *survivable* fault schedule —
worker processes SIGKILLed mid-step, frozen with SIGSTOP, sleeping past
the supervision deadline, result messages dropped, chunks that kill
every worker that leases them — aggregate results are byte-identical to
a fault-free run, and the step finishes within a bounded wall-clock
deadline instead of hanging.  Faults here are *real* (signals delivered
to live processes), driven by the same declarative ``FaultPlan`` the
simulator uses.
"""

import multiprocessing
import signal
import warnings
from contextlib import contextmanager

import pytest

from repro import ClusterConfig, FractalContext, MultiprocessConfig
from repro.graph import erdos_renyi_graph
from repro.runtime.faults import (
    FaultPlan,
    MpDropResult,
    MpPoisonChunk,
    MpWorkerKill,
    MpWorkerStall,
)

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()

needs_fork = pytest.mark.skipif(
    not HAVE_FORK, reason="multiprocess backend requires fork start method"
)

# Every schedule must finish well within this bound; a hang here means
# the supervision loop lost a chunk or a join blocked forever.
DEADLINE_SECONDS = 90


@contextmanager
def deadline(seconds=DEADLINE_SECONDS):
    def on_alarm(signum, frame):
        raise TimeoutError(
            f"chaos schedule exceeded the {seconds}s wall-clock deadline"
        )

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.alarm(seconds)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi_graph(40, 110, n_labels=2, seed=3)


def _census(graph, engine):
    """Motif census keyed by canonical code; returns (counts, report)."""
    context = FractalContext(engine=engine)
    fg = context.from_graph(graph)
    view = (
        fg.vfractoid()
        .expand(3)
        .aggregate(
            "motifs",
            key_fn=lambda s, c: s.pattern(),
            value_fn=lambda s, c: 1,
            reduce_fn=lambda a, b: a + b,
        )
        .aggregation("motifs")
    )
    counts = {k.canonical_code(): v for k, v in view.items()}
    return counts, context.last_report


@pytest.fixture(scope="module")
def baseline(graph):
    """Fault-free simulator run — the byte-identity reference."""
    counts, _ = _census(graph, ClusterConfig(workers=2, cores_per_worker=2))
    return counts


# ---------------------------------------------------------------------------
# The chaos matrix: (name, num_procs, partition, worker_timeout, plan).
# Timeouts are tight (~1 s) so hang/straggler detection fires fast; the
# injected sleeps either fit under the deadline (recovered straggler,
# no kill) or deliberately blow past it.
# ---------------------------------------------------------------------------
CHAOS_MATRIX = [
    (
        "kill_first_chunk",
        2, None, 5.0,
        FaultPlan(mp_worker_kills=(MpWorkerKill(worker_id=0, after_chunks=0),)),
    ),
    (
        "kill_after_two_chunks",
        2, None, 5.0,
        FaultPlan(mp_worker_kills=(MpWorkerKill(worker_id=0, after_chunks=2),)),
    ),
    (
        "kill_two_of_three_workers",
        3, None, 5.0,
        FaultPlan(mp_worker_kills=(
            MpWorkerKill(worker_id=0, after_chunks=0),
            MpWorkerKill(worker_id=1, after_chunks=1),
        )),
    ),
    (
        "stall_below_timeout",
        2, None, 5.0,
        FaultPlan(mp_worker_stalls=(
            MpWorkerStall(worker_id=0, after_chunks=1, seconds=0.3),
        )),
    ),
    (
        "stall_past_timeout",
        2, None, 1.0,
        FaultPlan(mp_worker_stalls=(
            MpWorkerStall(worker_id=0, after_chunks=1, seconds=4.0),
        )),
    ),
    (
        "freeze_sigstop",
        2, None, 1.0,
        FaultPlan(mp_worker_stalls=(
            MpWorkerStall(worker_id=1, after_chunks=0, seconds=600.0,
                          freeze=True),
        )),
    ),
    (
        "drop_first_result",
        2, None, 1.0,
        FaultPlan(mp_drop_results=(
            MpDropResult(worker_id=1, chunk_number=0),
        )),
    ),
    (
        "drop_two_results",
        2, None, 1.0,
        FaultPlan(mp_drop_results=(
            MpDropResult(worker_id=0, chunk_number=1),
            MpDropResult(worker_id=1, chunk_number=0),
        )),
    ),
    (
        "poison_chunk",
        2, None, 2.0,
        FaultPlan(mp_poison_chunks=(MpPoisonChunk(chunk_index=2),)),
    ),
    (
        "poison_plus_kill",
        3, None, 2.0,
        FaultPlan(
            mp_poison_chunks=(MpPoisonChunk(chunk_index=0),),
            mp_worker_kills=(MpWorkerKill(worker_id=2, after_chunks=1),),
        ),
    ),
    (
        "kill_stall_drop_mixed",
        3, None, 1.0,
        FaultPlan(
            mp_worker_kills=(MpWorkerKill(worker_id=0, after_chunks=1),),
            mp_worker_stalls=(
                MpWorkerStall(worker_id=1, after_chunks=2, seconds=4.0),
            ),
            mp_drop_results=(MpDropResult(worker_id=2, chunk_number=0),),
        ),
    ),
    (
        "kill_hash_partition",
        2, "hash", 5.0,
        FaultPlan(mp_worker_kills=(MpWorkerKill(worker_id=0, after_chunks=0),)),
    ),
    (
        "freeze_vertexcut_partition",
        2, "vertexcut", 1.0,
        FaultPlan(mp_worker_stalls=(
            MpWorkerStall(worker_id=0, after_chunks=0, seconds=600.0,
                          freeze=True),
        )),
    ),
    (
        "drop_hash_partition",
        2, "hash", 1.0,
        FaultPlan(mp_drop_results=(
            MpDropResult(worker_id=1, chunk_number=0),
        )),
    ),
    (
        "seeded_plan",
        2, None, 2.0,
        FaultPlan.from_seed_mp(11, 2, stall_seconds=0.2),
    ),
]


@needs_fork
class TestChaosMatrix:
    @pytest.mark.parametrize(
        "name,num_procs,partition,timeout,plan",
        CHAOS_MATRIX,
        ids=[case[0] for case in CHAOS_MATRIX],
    )
    def test_counts_identical_under_faults(
        self, graph, baseline, name, num_procs, partition, timeout, plan
    ):
        config = MultiprocessConfig(
            num_procs=num_procs,
            partition=partition,
            worker_timeout=timeout,
            fault_plan=plan,
        )
        with deadline():
            counts, report = _census(graph, config)
        assert counts == baseline
        summary = report.backend_summary()
        assert summary["backend"] == "multiprocess"
        # Recovery ledger mirrors the metrics counters exactly.
        assert summary["workers_lost"] == report.metrics.workers_lost
        assert summary["chunks_reexecuted"] == report.metrics.chunks_reexecuted
        assert summary["chunks_quarantined"] == (
            report.metrics.chunks_quarantined
        )

    def test_fault_free_run_reports_zero_recovery(self, graph, baseline):
        with deadline():
            counts, report = _census(graph, MultiprocessConfig(num_procs=2))
        assert counts == baseline
        summary = report.backend_summary()
        assert summary["workers_lost"] == 0
        assert summary["workers_respawned"] == 0
        assert summary["chunks_reexecuted"] == 0
        assert summary["chunks_quarantined"] == 0
        assert "degraded_to" not in summary

    def test_kill_is_detected_and_respawned(self, graph, baseline):
        plan = FaultPlan(
            mp_worker_kills=(MpWorkerKill(worker_id=0, after_chunks=0),)
        )
        with deadline():
            counts, report = _census(
                graph,
                MultiprocessConfig(
                    num_procs=2, worker_timeout=5.0, fault_plan=plan
                ),
            )
        assert counts == baseline
        assert report.metrics.workers_lost >= 1
        assert report.metrics.workers_respawned >= 1
        assert report.metrics.chunks_reexecuted >= 1

    def test_short_stall_recovers_without_kill(self, graph, baseline):
        plan = FaultPlan(
            mp_worker_stalls=(
                MpWorkerStall(worker_id=0, after_chunks=0, seconds=0.2),
            )
        )
        with deadline():
            counts, report = _census(
                graph,
                MultiprocessConfig(
                    num_procs=2, worker_timeout=10.0, fault_plan=plan
                ),
            )
        assert counts == baseline
        # The stall fit inside the lease deadline: a straggler that
        # catches up is not a fault.
        assert report.metrics.workers_lost == 0
        assert report.metrics.chunks_reexecuted == 0

    def test_poison_chunk_is_quarantined(self, graph, baseline):
        plan = FaultPlan(mp_poison_chunks=(MpPoisonChunk(chunk_index=1),))
        with deadline():
            counts, report = _census(
                graph,
                MultiprocessConfig(
                    num_procs=2,
                    worker_timeout=2.0,
                    max_chunk_retries=1,
                    fault_plan=plan,
                ),
            )
        assert counts == baseline
        assert report.metrics.chunks_quarantined >= 1
        # The poison chunk killed a worker per lease attempt.
        assert report.metrics.workers_lost >= 2


@needs_fork
class TestDegradationLadder:
    def test_total_worker_loss_degrades_to_sequential(self, graph, baseline):
        # One slot, no respawn budget, a poison chunk: the slot dies,
        # cannot be replaced, and the whole remainder of the step must
        # run in-driver — with a warning, not an exception.
        plan = FaultPlan(mp_poison_chunks=(MpPoisonChunk(chunk_index=0),))
        config = MultiprocessConfig(
            num_procs=1,
            worker_timeout=2.0,
            max_worker_retries=0,
            max_chunk_retries=0,
            fault_plan=plan,
        )
        with deadline():
            with pytest.warns(RuntimeWarning, match="respawn"):
                counts, report = _census(graph, config)
        assert counts == baseline
        summary = report.backend_summary()
        assert summary["degraded_to"] == "sequential"
        assert report.metrics.workers_lost >= 1

    def test_degrade_never_raises_instead(self, graph):
        plan = FaultPlan(mp_poison_chunks=(MpPoisonChunk(chunk_index=0),))
        config = MultiprocessConfig(
            num_procs=1,
            worker_timeout=2.0,
            max_worker_retries=0,
            max_chunk_retries=0,
            degrade="never",
            fault_plan=plan,
        )
        with deadline():
            with pytest.raises(RuntimeError, match="respawn"):
                _census(graph, config)

    def test_quarantine_alone_is_not_degradation(self, graph, baseline):
        # Survivable poison with respawn budget left: the step stays on
        # real workers, only the poison chunk moves in-driver.
        plan = FaultPlan(mp_poison_chunks=(MpPoisonChunk(chunk_index=0),))
        config = MultiprocessConfig(
            num_procs=2,
            worker_timeout=2.0,
            max_chunk_retries=0,
            fault_plan=plan,
        )
        with deadline():
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                counts, report = _census(graph, config)
        assert counts == baseline
        assert "degraded_to" not in report.backend_summary()
        assert report.metrics.chunks_quarantined == 1
