"""Tests for subgraph querying, keyword search and triangles."""

import pytest

from repro import FractalContext, Pattern
from repro.apps import (
    QUERY_PATTERNS,
    build_inverted_index,
    count_query_matches,
    count_triangles,
    keyword_fractoid,
    keyword_search,
    query_subgraphs,
)
from repro.graph import (
    GraphBuilder,
    complete_graph,
    erdos_renyi_graph,
    wikidata_like,
)
from repro.pattern import count_pattern_matches

from conftest import brute_cliques


class TestQueryPatterns:
    def test_catalogue_complete(self):
        assert set(QUERY_PATTERNS) == {f"q{i}" for i in range(1, 9)}

    def test_stated_properties(self):
        # q1, q4, q5 are cliques; q3 is a subgraph of q7.
        assert QUERY_PATTERNS["q1"].is_clique()
        assert QUERY_PATTERNS["q4"].is_clique()
        assert QUERY_PATTERNS["q5"].is_clique()
        assert QUERY_PATTERNS["q7"].n_vertices > QUERY_PATTERNS["q3"].n_vertices
        for pattern in QUERY_PATTERNS.values():
            assert pattern.is_connected()


class TestSubgraphQuerying:
    @pytest.mark.parametrize("name", ["q1", "q2", "q3", "q4", "q6", "q8"])
    def test_counts_match_oracle(self, name):
        graph = erdos_renyi_graph(25, 80, seed=5)
        fg = FractalContext().from_graph(graph)
        pattern = QUERY_PATTERNS[name]
        assert count_query_matches(fg, pattern) == count_pattern_matches(
            pattern, graph
        )

    def test_subgraphs_contain_pattern_edges(self):
        graph = erdos_renyi_graph(20, 70, seed=6)
        fg = FractalContext().from_graph(graph)
        pattern = QUERY_PATTERNS["q3"]
        for result in query_subgraphs(fg, pattern):
            assert len(result.edges) == pattern.n_edges
            assert len(result.vertices) == pattern.n_vertices

    def test_triangle_query_equals_cliques(self):
        graph = erdos_renyi_graph(25, 80, seed=7)
        fg = FractalContext().from_graph(graph)
        assert count_query_matches(fg, Pattern.clique(3)) == brute_cliques(
            graph, 3
        )


class TestTriangles:
    def test_counts(self):
        graph = erdos_renyi_graph(30, 110, seed=8)
        fg = FractalContext().from_graph(graph)
        expected = brute_cliques(graph, 3)
        assert count_triangles(fg) == expected
        assert count_triangles(fg, optimized=True) == expected

    def test_k4_has_four_triangles(self):
        fg = FractalContext().from_graph(complete_graph(4))
        assert count_triangles(fg) == 4


def _keyword_graph():
    """Small deterministic keyword graph: a path with annotated edges."""
    builder = GraphBuilder()
    for _ in range(5):
        builder.add_vertex()
    builder.add_edge(0, 1, keywords=["alpha"])
    builder.add_edge(1, 2, keywords=["beta"])
    builder.add_edge(2, 3, keywords=["alpha", "beta"])
    builder.add_edge(3, 4, keywords=["gamma"])
    return builder.build()


class TestKeywordSearch:
    def test_inverted_index(self):
        graph = _keyword_graph()
        index = build_inverted_index(graph, ["alpha", "beta", "missing"])
        assert index[0] == {0, 2}
        assert index[1] == {1, 2}
        assert index[2] == set()

    def test_minimal_covers(self):
        graph = _keyword_graph()
        fg = FractalContext().from_graph(graph)
        result = keyword_search(fg, ["alpha", "beta"])
        covers = {tuple(sorted(r.edges)) for r in result.subgraphs}
        # Edge 2 alone covers both words; edges {0,1} together cover both.
        # {1, 2} is NOT minimal: dropping edge 1 still covers the query.
        assert (2,) in covers
        assert (0, 1) in covers
        assert (1, 2) not in covers

    def test_every_result_covers_query(self):
        graph = wikidata_like(scale=0.25)
        fg = FractalContext().from_graph(graph)
        query = ["paris", "revolution"]
        result = keyword_search(fg, query)
        query_set = frozenset(query)
        for subgraph in result.subgraphs:
            words = set()
            for v in subgraph.vertices:
                words |= graph.vertex_keywords(v)
            for e in subgraph.edges:
                words |= graph.edge_keywords(e)
            assert query_set <= words

    def test_results_bounded_by_query_length(self):
        graph = wikidata_like(scale=0.25)
        fg = FractalContext().from_graph(graph)
        query = ["paris", "revolution", "author"]
        result = keyword_search(fg, query)
        assert all(len(r.edges) <= len(query) for r in result.subgraphs)

    def test_graph_reduction_preserves_results(self):
        graph = wikidata_like(scale=0.25)
        query = ["paris", "revolution"]
        full = keyword_search(FractalContext().from_graph(graph), query)
        reduced = keyword_search(
            FractalContext().from_graph(graph), query, use_graph_reduction=True
        )
        assert len(full.subgraphs) == len(reduced.subgraphs)
        # Map reduced ids back to original ids and compare edge sets.
        assert reduced.reduction is not None
        full_sets = {frozenset(r.edges) for r in full.subgraphs}
        mapped = {
            frozenset(reduced.reduction.original_edges(r.edges))
            for r in reduced.subgraphs
        }
        assert mapped == full_sets

    def test_graph_reduction_cuts_extension_cost(self):
        graph = wikidata_like(scale=0.4)
        query = ["paris", "revolution"]
        full = keyword_search(FractalContext().from_graph(graph), query)
        reduced = keyword_search(
            FractalContext().from_graph(graph), query, use_graph_reduction=True
        )
        assert reduced.extension_cost < full.extension_cost

    def test_empty_query_rejected(self):
        fg = FractalContext().from_graph(_keyword_graph())
        with pytest.raises(ValueError):
            keyword_fractoid(fg, [])
