"""Tests for the execution driver and sequential engine internals."""

import pytest

from repro import ClusterConfig, FractalContext
from repro.core import Computation, Expand, Filter, VertexInducedStrategy
from repro.graph import erdos_renyi_graph
from repro.pattern import PatternInterner
from repro.runtime import Metrics
from repro.runtime.driver import execute_plan
from repro.runtime.engine import run_step_sequential


@pytest.fixture
def graph():
    return erdos_renyi_graph(20, 50, seed=4)


class TestRunStepSequential:
    def test_root_words_restriction(self, graph):
        metrics = Metrics()
        interner = PatternInterner()
        strategy = VertexInducedStrategy(graph, metrics, interner)
        computation = Computation(graph, metrics, interner)
        emitted = []
        run_step_sequential(
            strategy,
            [Expand()],
            computation,
            cached_uids=set(),
            sink=lambda s: emitted.append(tuple(s.vertices)),
            root_words=[0, 1, 2],
        )
        assert sorted(emitted) == [(0,), (1,), (2,)]

    def test_empty_root_words(self, graph):
        metrics = Metrics()
        interner = PatternInterner()
        strategy = VertexInducedStrategy(graph, metrics, interner)
        computation = Computation(graph, metrics, interner)
        run_step_sequential(
            strategy, [Expand()], computation, set(), sink=None, root_words=[]
        )
        assert metrics.subgraphs_enumerated == 0

    def test_filter_short_circuits(self, graph):
        metrics = Metrics()
        interner = PatternInterner()
        strategy = VertexInducedStrategy(graph, metrics, interner)
        computation = Computation(graph, metrics, interner)
        emitted = []
        run_step_sequential(
            strategy,
            [Expand(), Filter(lambda s, c: False), Expand()],
            computation,
            set(),
            sink=lambda s: emitted.append(1),
        )
        assert not emitted
        assert metrics.filter_calls == graph.n_vertices
        assert metrics.filter_passed == 0


class TestExecutePlan:
    def test_unknown_engine_rejected(self, graph):
        with pytest.raises(ValueError):
            execute_plan(
                graph,
                VertexInducedStrategy,
                PatternInterner(),
                [Expand()],
                aggregation_cache={},
                engine="mystery",
            )

    def test_collect_none_keeps_no_subgraphs(self, graph):
        report = execute_plan(
            graph,
            VertexInducedStrategy,
            PatternInterner(),
            [Expand()],
            aggregation_cache={},
            collect=None,
        )
        assert report.subgraphs is None
        assert report.result_count == 0

    def test_collect_count(self, graph):
        report = execute_plan(
            graph,
            VertexInducedStrategy,
            PatternInterner(),
            [Expand()],
            aggregation_cache={},
            collect="count",
        )
        assert report.subgraphs is None
        assert report.result_count == graph.n_vertices

    def test_collect_subgraphs(self, graph):
        report = execute_plan(
            graph,
            VertexInducedStrategy,
            PatternInterner(),
            [Expand()],
            aggregation_cache={},
            collect="subgraphs",
        )
        assert len(report.subgraphs) == graph.n_vertices
        assert report.result_count == graph.n_vertices

    def test_wall_time_recorded(self, graph):
        report = execute_plan(
            graph,
            VertexInducedStrategy,
            PatternInterner(),
            [Expand(), Expand()],
            aggregation_cache={},
            collect="count",
        )
        # Tolerance, not an exact bound: coarse perf_counter resolution can
        # legally report ~0 for a fast run, so only reject negative times
        # and absurd jitter (a unit-scale run must not take a minute).
        assert report.wall_seconds == pytest.approx(0.0, abs=60.0)
        assert report.wall_seconds >= 0.0
        assert report.simulated_seconds > 0

    def test_setup_overhead_only_for_cluster(self, graph):
        sequential = execute_plan(
            graph,
            VertexInducedStrategy,
            PatternInterner(),
            [Expand()],
            aggregation_cache={},
            collect="count",
        )
        assert sequential.setup_seconds == 0.0
        cluster = execute_plan(
            graph,
            VertexInducedStrategy,
            PatternInterner(),
            [Expand()],
            aggregation_cache={},
            engine=ClusterConfig(workers=1, cores_per_worker=2),
            collect="count",
        )
        assert cluster.setup_seconds > 0


class TestStepReports:
    def test_description_strings(self, graph):
        fc = FractalContext()
        report = (
            fc.from_graph(graph)
            .vfractoid()
            .expand(1)
            .filter(lambda s, c: True)
            .execute(collect="count")
        )
        assert report.steps[0].description == "EF"

    def test_cluster_step_carries_core_data(self, graph):
        config = ClusterConfig(workers=1, cores_per_worker=2)
        report = (
            FractalContext(engine=config)
            .from_graph(graph)
            .vfractoid()
            .expand(2)
            .execute(collect="count")
        )
        step = report.steps[0]
        assert step.cluster is not None
        assert len(step.cluster.cores) == 2
        assert step.cluster.makespan_units > 0
