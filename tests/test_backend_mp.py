"""Tests for the execution-backend seam and the multiprocess backend.

The contract under test: the deterministic simulator stays the default
and byte-identical to the seed behaviour, while the multiprocess backend
(real worker processes attached to shared-memory CSR buffers) produces
the same counts and aggregates as the sequential engine on every
application.  Pattern *objects* compare by canonical DFS code, so
cross-process results are compared with set/dict equality — different
interners may pick different (isomorphic) representatives.
"""

import multiprocessing

import pytest

from repro import ClusterConfig, FractalContext, MultiprocessConfig
from repro.apps import count_cliques, fsm, motifs
from repro.graph import community_graph, erdos_renyi_graph
from repro.runtime.backend import (
    SequentialBackend,
    SimulatorBackend,
    resolve_backend,
)
from repro.runtime.costmodel import DEFAULT_COST_MODEL
from repro.runtime.mp_backend import MultiprocessBackend

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()

needs_fork = pytest.mark.skipif(
    not HAVE_FORK, reason="multiprocess backend requires fork start method"
)


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi_graph(40, 110, n_labels=2, seed=3)


def _motifs(engine, graph, k=3):
    fc = FractalContext(engine=engine)
    return motifs(fc.from_graph(graph), k)


class TestBackendResolution:
    def test_sequential_string(self):
        backend = resolve_backend("sequential", DEFAULT_COST_MODEL)
        assert isinstance(backend, SequentialBackend)

    def test_cluster_config_resolves_to_simulator(self):
        config = ClusterConfig(workers=2, cores_per_worker=2)
        assert isinstance(
            resolve_backend(config, DEFAULT_COST_MODEL), SimulatorBackend
        )

    @needs_fork
    def test_mp_config_resolves_to_multiprocess(self):
        config = MultiprocessConfig(num_procs=2)
        backend = resolve_backend(config, DEFAULT_COST_MODEL)
        try:
            assert isinstance(backend, MultiprocessBackend)
        finally:
            backend.close()

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            resolve_backend("spark", DEFAULT_COST_MODEL)

    def test_bad_mp_config_rejected(self):
        with pytest.raises(ValueError):
            MultiprocessConfig(num_procs=0)
        with pytest.raises(ValueError):
            MultiprocessConfig(partition="metis")


@needs_fork
class TestMultiprocessEquivalence:
    def test_motifs_match_sequential(self, graph):
        seq = _motifs("sequential", graph)
        mp = _motifs(MultiprocessConfig(num_procs=2), graph)
        assert dict(mp) == dict(seq)

    def test_motifs_match_simulator(self, graph):
        sim = _motifs(ClusterConfig(workers=2, cores_per_worker=2), graph)
        mp = _motifs(MultiprocessConfig(num_procs=2), graph)
        assert dict(mp) == dict(sim)

    def test_motifs_partitioned(self, graph):
        seq = _motifs("sequential", graph)
        for strategy in ("hash", "vertexcut"):
            mp = _motifs(
                MultiprocessConfig(num_procs=2, partition=strategy), graph
            )
            assert dict(mp) == dict(seq)

    def test_cliques_match(self, graph):
        fc_seq = FractalContext()
        fc_mp = FractalContext(engine=MultiprocessConfig(num_procs=2))
        k = 4
        assert count_cliques(fc_mp.from_graph(graph), k) == count_cliques(
            fc_seq.from_graph(graph), k
        )

    def test_fsm_match(self):
        graph = community_graph(3, 10, p_in=0.4, p_out=0.05, n_labels=3, seed=5)
        fc_seq = FractalContext()
        fc_mp = FractalContext(
            engine=MultiprocessConfig(num_procs=2, partition="hash")
        )
        f_seq = fsm(fc_seq.from_graph(graph), min_support=3, max_edges=2)
        f_mp = fsm(fc_mp.from_graph(graph), min_support=3, max_edges=2)
        assert set(f_mp.frequent) == set(f_seq.frequent)
        assert {p: f_mp.support_of(p) for p in f_mp.frequent} == {
            p: f_seq.support_of(p) for p in f_seq.frequent
        }

    def test_subgraph_collection(self, graph):
        fc_seq = FractalContext()
        fc_mp = FractalContext(engine=MultiprocessConfig(num_procs=2))
        seq = fc_seq.from_graph(graph).vfractoid().expand(1).explore(1)
        mp = fc_mp.from_graph(graph).vfractoid().expand(1).explore(1)
        assert set(s.vertices for s in mp.subgraphs()) == set(
            s.vertices for s in seq.subgraphs()
        )


@needs_fork
class TestRemoteFetchMetering:
    def test_unpartitioned_run_has_zero_fetch_counters(self, graph):
        fc = FractalContext(engine=MultiprocessConfig(num_procs=2))
        motifs(fc.from_graph(graph), 3)
        m = fc.last_report.metrics
        assert m.remote_adjacency_fetches == 0
        assert m.local_adjacency_fetches == 0

    def test_partitioned_run_meters_fetches(self, graph):
        fc = FractalContext(
            engine=MultiprocessConfig(num_procs=2, partition="hash")
        )
        motifs(fc.from_graph(graph), 3)
        m = fc.last_report.metrics
        assert m.remote_adjacency_fetches > 0
        assert m.local_adjacency_fetches > 0
        summary = fc.last_report.partition_summary()
        assert summary["strategy"] == "hash"
        assert summary["remote_fetches"] == m.remote_adjacency_fetches
        assert summary["remote_units"] == pytest.approx(
            m.remote_adjacency_fetches * DEFAULT_COST_MODEL.remote_fetch_units
        )

    def test_backend_summary_reports_shape(self, graph):
        fc = FractalContext(engine=MultiprocessConfig(num_procs=2))
        motifs(fc.from_graph(graph), 3)
        summary = fc.last_report.backend_summary()
        assert summary["backend"] == "multiprocess"
        assert summary["num_procs"] == 2
        assert summary["start_method"] == "fork"
        assert summary["shared_graph_bytes"] > 0


class TestSimulatorUnchanged:
    """The simulator stays the default parallel engine, byte-identical."""

    def test_simulator_report_identical_with_backend_seam(self, graph):
        fc = FractalContext(engine=ClusterConfig(workers=2, cores_per_worker=2))
        census = motifs(fc.from_graph(graph), 3)
        report = fc.last_report
        # Identical simulated clock and counters run-to-run (determinism).
        fc2 = FractalContext(
            engine=ClusterConfig(workers=2, cores_per_worker=2)
        )
        census2 = motifs(fc2.from_graph(graph), 3)
        assert dict(census) == dict(census2)
        assert report.metrics.snapshot() == fc2.last_report.metrics.snapshot()
        assert report.simulated_seconds == pytest.approx(
            fc2.last_report.simulated_seconds
        )

    def test_unpartitioned_simulator_has_zero_fetch_counters(self, graph):
        fc = FractalContext(engine=ClusterConfig(workers=2, cores_per_worker=2))
        motifs(fc.from_graph(graph), 3)
        assert fc.last_report.metrics.remote_adjacency_fetches == 0
        assert fc.last_report.metrics.local_adjacency_fetches == 0

    def test_partitioned_simulator_meters_and_slows(self, graph):
        plain = ClusterConfig(workers=2, cores_per_worker=2)
        parts = ClusterConfig(workers=2, cores_per_worker=2, partition="hash")
        fc_plain = FractalContext(engine=plain)
        fc_parts = FractalContext(engine=parts)
        c_plain = motifs(fc_plain.from_graph(graph), 3)
        c_parts = motifs(fc_parts.from_graph(graph), 3)
        assert dict(c_plain) == dict(c_parts)
        assert fc_parts.last_report.metrics.remote_adjacency_fetches > 0
        # Remote fetches are priced on the simulated clock.
        assert (
            fc_parts.last_report.simulated_seconds
            > fc_plain.last_report.simulated_seconds
        )


class TestSharedGraphBuffers:
    def test_attach_round_trip(self, graph):
        from repro.graph import SharedGraphBuffers

        shared = SharedGraphBuffers(graph)
        try:
            attached = shared.attach()
            assert attached.n_vertices == graph.n_vertices
            assert attached.n_edges == graph.n_edges
            assert attached.frozen
            for v in graph.vertices():
                assert attached.neighbors(v) == graph.neighbors(v)
                assert attached.vertex_label(v) == graph.vertex_label(v)
            for e in graph.edges():
                assert attached.edge(e) == graph.edge(e)
                assert attached.edge_label(e) == graph.edge_label(e)
            assert shared.nbytes > 0
        finally:
            # Release the attached views before teardown so the segment
            # unmaps cleanly (same-process attach is a test convenience;
            # workers attach in their own processes).
            del attached
            shared.unlink()

    def test_source_graph_is_frozen(self, graph):
        from repro.graph import SharedGraphBuffers
        from repro.graph.graph import GraphError

        shared = SharedGraphBuffers(graph)
        try:
            assert graph.frozen
            with pytest.raises(GraphError):
                graph.set_vertex_label(0, 1)
        finally:
            shared.unlink()

    def test_unlink_idempotent(self, graph):
        from repro.graph import SharedGraphBuffers

        shared = SharedGraphBuffers(graph)
        shared.unlink()
        shared.unlink()  # must not raise

    def test_abandoned_segment_does_not_leak(self):
        # Regression for the finalizer guard: a driver that creates a
        # segment and exits without unlink() must not leave the segment
        # behind or trip the stdlib resource_tracker's leak warning at
        # interpreter shutdown.
        import subprocess
        import sys

        code = (
            "from repro.graph import SharedGraphBuffers, erdos_renyi_graph\n"
            "g = erdos_renyi_graph(12, 20, seed=1)\n"
            "shared = SharedGraphBuffers(g)\n"
            "print(shared.name)\n"
            # No unlink(), no close(): abandon the segment on purpose.
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert proc.returncode == 0, proc.stderr
        assert "leaked shared_memory" not in proc.stderr
        assert proc.stderr.strip() == ""
        name = proc.stdout.strip()
        assert name
        # The finalizer unlinked the name before the process exited.
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name, create=False)


class TestMultiprocessConfigValidation:
    def test_rejects_zero_procs(self):
        with pytest.raises(ValueError, match="num_procs must be >= 1"):
            MultiprocessConfig(num_procs=0)

    def test_rejects_nonpositive_timeout(self):
        with pytest.raises(ValueError, match="worker_timeout"):
            MultiprocessConfig(worker_timeout=0.0)

    def test_rejects_negative_retries(self):
        with pytest.raises(ValueError, match="max_worker_retries"):
            MultiprocessConfig(max_worker_retries=-1)
        with pytest.raises(ValueError, match="max_chunk_retries"):
            MultiprocessConfig(max_chunk_retries=-1)

    def test_rejects_unknown_degrade(self):
        with pytest.raises(ValueError, match="degrade"):
            MultiprocessConfig(degrade="sometimes")

    def test_no_fork_platform_degrades_with_actionable_warning(self, monkeypatch):
        monkeypatch.setattr(
            multiprocessing, "get_all_start_methods", lambda: ["spawn"]
        )
        with pytest.warns(RuntimeWarning) as caught:
            backend = resolve_backend(
                MultiprocessConfig(num_procs=2), DEFAULT_COST_MODEL
            )
        assert isinstance(backend, SequentialBackend)
        message = str(caught[0].message)
        assert "fork" in message
        assert "--backend simulator" in message

    def test_no_fork_platform_raises_when_degrade_never(self, monkeypatch):
        monkeypatch.setattr(
            multiprocessing, "get_all_start_methods", lambda: ["spawn"]
        )
        with pytest.raises(RuntimeError, match="--backend simulator"):
            resolve_backend(
                MultiprocessConfig(num_procs=2, degrade="never"),
                DEFAULT_COST_MODEL,
            )
