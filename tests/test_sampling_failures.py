"""Tests for the sampling enumerator and failure injection/recovery."""

import pytest

from repro import ClusterConfig, FractalContext
from repro.apps import approximate_motifs, motifs, sampled_vfractoid
from repro.graph import erdos_renyi_graph, powerlaw_graph


class TestSampling:
    def test_probability_one_is_exact(self):
        graph = erdos_renyi_graph(25, 60, seed=4)
        exact = FractalContext().from_graph(graph).vfractoid().expand(3).count()
        sampled = sampled_vfractoid(
            FractalContext().from_graph(graph), probability=1.0
        ).expand(3).count()
        assert sampled == exact

    def test_sampling_reduces_work(self):
        graph = erdos_renyi_graph(30, 90, seed=5)
        full = sampled_vfractoid(
            FractalContext().from_graph(graph), probability=1.0
        ).expand(3).execute(collect="count")
        half = sampled_vfractoid(
            FractalContext().from_graph(graph), probability=0.5, seed=1
        ).expand(3).execute(collect="count")
        assert half.result_count < full.result_count
        assert (
            half.metrics.subgraphs_enumerated < full.metrics.subgraphs_enumerated
        )

    def test_determinism_per_seed(self):
        graph = erdos_renyi_graph(30, 90, seed=5)

        def run(seed):
            return sampled_vfractoid(
                FractalContext().from_graph(graph), probability=0.6, seed=seed
            ).expand(3).count()

        assert run(7) == run(7)
        assert run(7) != run(8) or run(7) != run(9)  # seeds vary draws

    def test_steal_safety(self):
        """Stolen prefixes make identical sampling decisions."""
        graph = powerlaw_graph(60, attach=4, seed=6)
        sequential = sampled_vfractoid(
            FractalContext().from_graph(graph), probability=0.7, seed=3
        ).expand(3).count()
        config = ClusterConfig(workers=2, cores_per_worker=4)
        parallel = sampled_vfractoid(
            FractalContext(engine=config).from_graph(graph),
            probability=0.7,
            seed=3,
        ).expand(3).count()
        assert parallel == sequential

    def test_invalid_probability(self):
        graph = erdos_renyi_graph(10, 15, seed=1)
        with pytest.raises(ValueError):
            sampled_vfractoid(
                FractalContext().from_graph(graph), probability=0.0
            ).expand(1).count()

    def test_estimator_accuracy(self):
        """Averaged over seeds, estimates land near the true census."""
        graph = erdos_renyi_graph(30, 90, n_labels=1, seed=7)
        truth = motifs(FractalContext().from_graph(graph), 3)
        seeds = range(12)
        totals = {}
        for seed in seeds:
            estimate = approximate_motifs(
                FractalContext().from_graph(graph), 3, probability=0.7, seed=seed
            )
            for pattern, value in estimate.items():
                totals[pattern.canonical_code()] = (
                    totals.get(pattern.canonical_code(), 0.0) + value
                )
        for pattern, true_count in truth.items():
            mean = totals.get(pattern.canonical_code(), 0.0) / len(seeds)
            assert mean == pytest.approx(true_count, rel=0.35), pattern

    def test_validates_k(self):
        graph = erdos_renyi_graph(10, 15, seed=1)
        with pytest.raises(ValueError):
            approximate_motifs(
                FractalContext().from_graph(graph), 0, probability=0.5
            )


class TestFailureInjection:
    def _clique_count(self, graph, config):
        return (
            FractalContext(engine=config)
            .from_graph(graph)
            .vfractoid()
            .expand(1)
            .filter(lambda s, c: s.edges_added_last() == s.n_vertices - 1)
            .explore(3)
            .execute(collect="count")
        )

    def test_results_survive_failures(self):
        graph = powerlaw_graph(100, attach=5, seed=8)
        healthy = self._clique_count(
            graph, ClusterConfig(workers=2, cores_per_worker=4)
        )
        injected = self._clique_count(
            graph,
            ClusterConfig(
                workers=2,
                cores_per_worker=4,
                fail_at={0: 50.0, 5: 120.0},
            ),
        )
        assert injected.result_count == healthy.result_count
        assert (
            injected.metrics.subgraphs_enumerated
            == healthy.metrics.subgraphs_enumerated
        )

    def test_failed_cores_reported(self):
        graph = powerlaw_graph(100, attach=5, seed=8)
        report = self._clique_count(
            graph,
            ClusterConfig(
                workers=2, cores_per_worker=4, fail_at={0: 50.0}
            ),
        )
        cores = report.steps[-1].cluster.cores
        assert cores[0].failed
        assert sum(1 for c in cores if c.failed) == 1

    def test_survivors_absorb_orphaned_work(self):
        graph = powerlaw_graph(100, attach=5, seed=8)
        report = self._clique_count(
            graph,
            ClusterConfig(
                workers=2, cores_per_worker=4, fail_at={0: 10.0}
            ),
        )
        # The dead core stops early; someone must steal from it.
        total_steals = (
            report.metrics.steals_internal + report.metrics.steals_external
        )
        assert total_steals > 0

    def test_recovery_without_stealing(self):
        """With stealing off, orphans are recovered by driver resubmission."""
        graph = powerlaw_graph(100, attach=5, seed=8)
        config = ClusterConfig(
            workers=2, cores_per_worker=4, ws_internal=False, ws_external=False
        )
        healthy = self._clique_count(graph, config)
        injected = self._clique_count(
            graph,
            ClusterConfig(
                workers=2,
                cores_per_worker=4,
                ws_internal=False,
                ws_external=False,
                fail_at={0: 10.0},
            ),
        )
        assert injected.result_count == healthy.result_count
        cluster = injected.steps[-1].cluster
        assert cluster.failures == 1
        assert cluster.recovered_frames > 0  # the driver-level fallback ran
        assert injected.metrics.reenumerated_extensions > 0

    def test_failure_of_every_core_but_one(self):
        graph = powerlaw_graph(60, attach=4, seed=9)
        healthy = self._clique_count(
            graph, ClusterConfig(workers=1, cores_per_worker=4)
        )
        config = ClusterConfig(
            workers=1,
            cores_per_worker=4,
            fail_at={0: 5.0, 1: 5.0, 2: 5.0},
        )
        report = self._clique_count(graph, config)
        assert report.result_count == healthy.result_count
