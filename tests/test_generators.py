"""Tests for synthetic graph generators and dataset stand-ins."""

import pytest

from repro.graph import (
    assign_keywords,
    assign_labels,
    community_graph,
    complete_graph,
    cycle_graph,
    dataset_registry,
    dataset_stats,
    erdos_renyi_graph,
    mico_like,
    orkut_like,
    path_graph,
    patents_like,
    powerlaw_graph,
    star_graph,
    wikidata_like,
    youtube_like,
)


class TestBasicTopologies:
    def test_complete_graph(self):
        g = complete_graph(5)
        assert g.n_vertices == 5
        assert g.n_edges == 10
        assert g.density() == pytest.approx(1.0)

    def test_path_graph_with_labels(self):
        g = path_graph(4, labels=[1, 2, 3, 4])
        assert g.n_edges == 3
        assert [g.vertex_label(v) for v in g.vertices()] == [1, 2, 3, 4]

    def test_cycle_graph(self):
        g = cycle_graph(6)
        assert g.n_edges == 6
        assert all(g.degree(v) == 2 for v in g.vertices())

    def test_cycle_rejects_small(self):
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_star_graph(self):
        g = star_graph(7)
        assert g.degree(0) == 7
        assert all(g.degree(v) == 1 for v in range(1, 8))


class TestRandomGenerators:
    def test_erdos_renyi_size_and_determinism(self):
        g1 = erdos_renyi_graph(50, 120, n_labels=3, seed=7)
        g2 = erdos_renyi_graph(50, 120, n_labels=3, seed=7)
        assert g1.n_vertices == 50
        assert g1.n_edges == 120
        assert list(g1.iter_edge_tuples()) == list(g2.iter_edge_tuples())

    def test_erdos_renyi_rejects_too_many_edges(self):
        with pytest.raises(ValueError):
            erdos_renyi_graph(4, 10)

    def test_powerlaw_connected_and_skewed(self):
        g = powerlaw_graph(200, attach=3, seed=1)
        assert g.n_vertices == 200
        # Preferential attachment: connected by construction.
        seen = {0}
        stack = [0]
        while stack:
            v = stack.pop()
            for u in g.neighbors(v):
                if u not in seen:
                    seen.add(u)
                    stack.append(u)
        assert len(seen) == 200
        degrees = sorted(g.degree(v) for v in g.vertices())
        # Heavy tail: the max degree dwarfs the median.
        assert degrees[-1] >= 4 * degrees[len(degrees) // 2]

    def test_powerlaw_rejects_bad_params(self):
        with pytest.raises(ValueError):
            powerlaw_graph(3, attach=5)
        with pytest.raises(ValueError):
            powerlaw_graph(10, attach=0)

    def test_community_graph_density_contrast(self):
        g = community_graph(communities=3, size=10, p_in=0.7, p_out=0.01, seed=2)
        internal = external = 0
        for e in g.edges():
            u, v = g.edge(e)
            if u // 10 == v // 10:
                internal += 1
            else:
                external += 1
        assert internal > external

    def test_assign_labels(self):
        g = erdos_renyi_graph(30, 60, seed=3)
        relabeled = assign_labels(g, n_labels=5, seed=4)
        assert relabeled.n_edges == g.n_edges
        assert len(set(relabeled.vertex_labels())) > 1

    def test_assign_keywords(self):
        g = erdos_renyi_graph(30, 60, seed=3)
        annotated = assign_keywords(
            g, vocabulary=["a", "b", "c"], words_per_edge=1, seed=5
        )
        assert annotated.has_keywords()
        assert all(len(annotated.edge_keywords(e)) >= 1 for e in annotated.edges())

    def test_assign_keywords_empty_vocab_rejected(self):
        g = erdos_renyi_graph(5, 4, seed=1)
        with pytest.raises(ValueError):
            assign_keywords(g, vocabulary=[])


class TestDatasetStandIns:
    def test_registry_contains_all(self):
        registry = dataset_registry()
        assert set(registry) == {"mico", "patents", "youtube", "wikidata", "orkut"}

    def test_labeled_and_single_label_variants(self):
        ml = mico_like(labeled=True)
        sl = mico_like(labeled=False)
        assert ml.n_labels() > 1
        assert sl.n_labels() == 1
        assert ml.name.endswith("-ml")
        assert sl.name.endswith("-sl")

    def test_scaling(self):
        small = youtube_like(scale=0.25)
        large = youtube_like(scale=1.0)
        assert large.n_vertices > small.n_vertices

    def test_relative_sizes_match_roles(self):
        mico = mico_like()
        youtube = youtube_like()
        wikidata = wikidata_like()
        # Youtube is the big workload; Mico is small and dense.
        assert youtube.n_vertices > mico.n_vertices
        assert mico.density() > wikidata.density()

    def test_wikidata_has_query_keywords(self):
        g = wikidata_like(scale=0.5)
        words = g.all_keywords()
        for word in ("paris", "revolution", "author", "woody", "allen"):
            assert word in words

    def test_orkut_denser_than_patents(self):
        assert orkut_like(scale=0.5).density() > patents_like(scale=0.5).density()

    def test_dataset_stats_row(self):
        stats = dataset_stats(mico_like(scale=0.5))
        assert stats["vertices"] > 0
        assert stats["edges"] > 0
        assert stats["labels"] >= 1
        assert 0 < stats["density"] <= 1

    def test_determinism(self):
        g1 = wikidata_like(scale=0.3)
        g2 = wikidata_like(scale=0.3)
        assert list(g1.iter_edge_tuples()) == list(g2.iter_edge_tuples())
        assert all(
            g1.edge_keywords(e) == g2.edge_keywords(e) for e in g1.edges()
        )
