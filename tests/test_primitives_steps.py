"""Tests for primitives and from-scratch step planning (Algorithm 2)."""

import pytest

from repro.core import (
    Aggregate,
    AggregationFilter,
    Expand,
    Filter,
    PlanError,
    plan_steps,
    resolve_aggregation_sources,
)


def _agg(name="a"):
    return Aggregate(name, lambda s, c: 0, lambda s, c: 1, lambda x, y: x + y)


class TestPrimitives:
    def test_unique_uids(self):
        assert Expand().uid != Expand().uid

    def test_reprs(self):
        assert repr(Expand()) == "E"
        assert repr(Filter(lambda s, c: True)) == "F"
        assert "a" in repr(_agg())
        assert "a" in repr(AggregationFilter("a", lambda s, v: True))


class TestResolveSources:
    def test_binds_nearest_preceding(self):
        a1 = _agg("support")
        a2 = _agg("support")
        f1 = AggregationFilter("support", lambda s, v: True)
        f2 = AggregationFilter("support", lambda s, v: True)
        primitives = [Expand(), a1, f1, Expand(), a2, f2]
        resolve_aggregation_sources(primitives)
        assert f1.source_uid == a1.uid
        assert f2.source_uid == a2.uid

    def test_missing_source_rejected(self):
        primitives = [Expand(), AggregationFilter("nope", lambda s, v: True)]
        with pytest.raises(PlanError):
            resolve_aggregation_sources(primitives)

    def test_different_names_independent(self):
        a1 = _agg("x")
        a2 = _agg("y")
        f = AggregationFilter("x", lambda s, v: True)
        primitives = [Expand(), a1, Expand(), a2, f]
        resolve_aggregation_sources(primitives)
        assert f.source_uid == a1.uid


class TestPlanSteps:
    def test_no_sync_single_step(self):
        primitives = [Expand(), Filter(lambda s, c: True), _agg()]
        steps = plan_steps(primitives, set())
        assert len(steps) == 1
        assert steps[0] == primitives

    def test_fsm_shape(self):
        a1 = _agg("support")
        f1 = AggregationFilter("support", lambda s, v: True)
        a2 = _agg("support")
        primitives = [Expand(), a1, f1, Expand(), a2]
        steps = plan_steps(primitives, set())
        assert len(steps) == 2
        assert steps[0] == [Expand(), a1][0:0] + primitives[:2]
        assert steps[1] == primitives

    def test_cached_aggregation_skips_boundary(self):
        a1 = _agg("support")
        f1 = AggregationFilter("support", lambda s, v: True)
        a2 = _agg("support")
        primitives = [Expand(), a1, f1, Expand(), a2]
        steps = plan_steps(primitives, {a1.uid})
        assert len(steps) == 1
        assert steps[0] == primitives

    def test_multi_round_fsm(self):
        a1 = _agg("support")
        f1 = AggregationFilter("support", lambda s, v: True)
        a2 = _agg("support")
        f2 = AggregationFilter("support", lambda s, v: True)
        a3 = _agg("support")
        primitives = [Expand(), a1, f1, Expand(), a2, f2, Expand(), a3]
        steps = plan_steps(primitives, set())
        assert [len(step) for step in steps] == [2, 5, 8]
        # Each step is a prefix of the next ("steps accumulate").
        for shorter, longer in zip(steps, steps[1:]):
            assert longer[: len(shorter)] == shorter

    def test_second_filter_on_computed_aggregation_no_boundary(self):
        a1 = _agg("support")
        f1 = AggregationFilter("support", lambda s, v: True)
        f2 = AggregationFilter("support", lambda s, v: True)
        primitives = [Expand(), a1, f1, f2, Expand()]
        steps = plan_steps(primitives, set())
        # f2 reads the same aggregation that f1's boundary made available.
        assert [len(step) for step in steps] == [2, 5]
