"""Smoke tests for the benchmark harness (small scales, fast)."""

from repro.apps import QUERY_PATTERNS
from repro.graph import mico_like, wikidata_like
from repro.harness import (
    format_table,
    fmt_bytes,
    fmt_ratio,
    fmt_seconds,
    paper_cluster,
    run_fig8_utilization,
    run_fig17_graph_reduction,
    run_fig19_scalability,
    run_sec41_memory_example,
    run_table1_datasets,
    scaled_memory_budget,
    single_machine,
)
from repro.harness.comparative import (
    _connected_subpattern_codes,
    arabesque_query_fractoid,
)
from repro import FractalContext, Pattern


class TestFormatting:
    def test_fmt_seconds(self):
        assert fmt_seconds(float("inf")) == "OOM"
        assert fmt_seconds(0.0005) == "0.5ms"
        assert fmt_seconds(2.5) == "2.50s"
        assert fmt_seconds(1234.0) == "1,234s"

    def test_fmt_bytes(self):
        assert fmt_bytes(512) == "512.0B"
        assert fmt_bytes(2048) == "2.0KB"
        assert fmt_bytes(3 * 1024**3) == "3.0GB"

    def test_fmt_ratio(self):
        assert fmt_ratio(2.0) == "2.00x"
        assert fmt_ratio(float("inf")) == "inf"

    def test_format_table_alignment(self):
        text = format_table(["a", "bbbb"], [(1, 2), (333, 4)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert all(len(line) == len(lines[1]) for line in lines[1:3])


class TestConfigs:
    def test_paper_cluster_shape(self):
        config = paper_cluster()
        assert config.total_cores == 280
        assert config.worker_of(0) == 0
        assert config.worker_of(279) == 9

    def test_single_machine(self):
        config = single_machine(8)
        assert config.workers == 1
        assert config.total_cores == 8

    def test_scaled_memory_budget_grows_with_graph(self):
        small = scaled_memory_budget(mico_like(scale=0.3))
        large = scaled_memory_budget(mico_like(scale=1.0))
        assert large > small


class TestRunners:
    def test_table1(self):
        rows = run_table1_datasets([mico_like(scale=0.3)], verbose=False)
        assert rows[0]["vertices"] > 0

    def test_fig8_small(self):
        rows = run_fig8_utilization(
            mico_like(scale=0.4), k=3, cores=4, bins=5, verbose=False
        )
        assert len(rows) == 5
        assert all(0.0 <= r["utilization"] <= 1.0 for r in rows)

    def test_sec41_example(self):
        rows = run_sec41_memory_example(
            mico_like(scale=0.3), (2, 3), verbose=False
        )
        assert rows[1]["subgraphs"] > rows[0]["subgraphs"]

    def test_fig17_small(self):
        rows = run_fig17_graph_reduction(
            wikidata_like(scale=0.15),
            queries={"Q1": ["paris", "revolution"]},
            core_counts=(1, 2),
            heavy_queries=(),
            verbose=False,
        )
        assert len(rows) == 2
        assert all(r["full_ec"] >= r["reduced_ec"] for r in rows)

    def test_fig19_small(self):
        from repro.apps import cliques_fractoid

        def runner(config):
            return cliques_fractoid(
                FractalContext().from_graph(mico_like(scale=0.5)), 3
            ).execute(collect=None, engine=config).simulated_seconds

        rows = run_fig19_scalability(
            {"cliques": runner}, worker_counts=(1, 2), cores_per_worker=4,
            verbose=False,
        )
        assert rows[0]["efficiency"] == 1.0
        assert rows[1]["seconds"] < rows[0]["seconds"]


class TestArabesqueQuery:
    def test_subpattern_codes_cover_sizes(self):
        allowed = _connected_subpattern_codes(QUERY_PATTERNS["q3"])
        assert set(allowed) == {1, 2, 3, 4, 5}
        assert all(allowed[size] for size in allowed)

    def test_single_edge_subpattern_of_triangle(self):
        allowed = _connected_subpattern_codes(Pattern.clique(3))
        single = Pattern([0, 0], [(0, 1, 0)])
        assert single.canonical_code() in allowed[1]

    def test_query_counts_match_pattern_induced(self):
        from repro.baselines import arabesque_run
        from repro.graph import erdos_renyi_graph
        from repro.apps import query_fractoid

        graph = erdos_renyi_graph(25, 70, seed=5)
        pattern = QUERY_PATTERNS["q3"]
        expected = query_fractoid(
            FractalContext().from_graph(graph), pattern
        ).count()
        report = arabesque_run(
            arabesque_query_fractoid(
                FractalContext().from_graph(graph), pattern
            )
        )
        assert not report.oom
        assert report.result_count == expected
