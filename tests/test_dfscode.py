"""Tests for minimum DFS-code canonicalization, including property tests."""

import random

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st
from networkx.algorithms.isomorphism import (
    GraphMatcher,
    categorical_edge_match,
    categorical_node_match,
)

from repro import Pattern
from repro.pattern import code_to_edges, minimum_dfs_code


def _random_connected(rng, n, n_vlabels=3, n_elabels=2, extra_max=None):
    """Random connected labeled graph as (labels, edge triples)."""
    nodes = list(range(n))
    rng.shuffle(nodes)
    edges = {}
    for i in range(1, n):
        a, b = nodes[i], nodes[rng.randrange(i)]
        key = (min(a, b), max(a, b))
        edges[key] = rng.randrange(n_elabels)
    extra = rng.randint(0, extra_max if extra_max is not None else n)
    for _ in range(extra):
        a, b = rng.randrange(n), rng.randrange(n)
        if a != b:
            key = (min(a, b), max(a, b))
            edges.setdefault(key, rng.randrange(n_elabels))
    labels = [rng.randrange(n_vlabels) for _ in range(n)]
    return labels, [(a, b, l) for (a, b), l in edges.items()]


def _permuted(labels, edges, perm):
    new_labels = [0] * len(labels)
    for old, label in enumerate(labels):
        new_labels[perm[old]] = label
    new_edges = [
        (min(perm[a], perm[b]), max(perm[a], perm[b]), l) for a, b, l in edges
    ]
    return new_labels, new_edges


class TestBasics:
    def test_single_vertex(self):
        code, mapping = minimum_dfs_code([7], [])
        assert code == ((0, 0, 7, -1, -1),)
        assert mapping == (0,)

    def test_single_edge(self):
        code, mapping = minimum_dfs_code([1, 2], [(0, 1, 5)])
        assert code == ((0, 1, 1, 5, 2),)
        # Vertex with the smaller label is discovered first.
        assert mapping == (0, 1)

    def test_single_edge_label_order(self):
        code, mapping = minimum_dfs_code([2, 1], [(0, 1, 5)])
        assert code == ((0, 1, 1, 5, 2),)
        assert mapping == (1, 0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            minimum_dfs_code([], [])

    def test_disconnected_rejected(self):
        with pytest.raises(ValueError):
            minimum_dfs_code([0, 0, 0], [(0, 1, 0)])

    def test_triangle_code_shape(self):
        code, _ = minimum_dfs_code([0, 0, 0], [(0, 1, 0), (1, 2, 0), (0, 2, 0)])
        assert len(code) == 3
        # Forward, forward, backward.
        assert code[0][:2] == (0, 1)
        assert code[1][:2] == (1, 2)
        assert code[2][:2] == (2, 0)

    def test_code_reconstruction(self):
        labels = [1, 0, 2, 0]
        edges = [(0, 1, 0), (1, 2, 1), (2, 3, 0), (0, 3, 1)]
        code, _ = minimum_dfs_code(labels, edges)
        r_labels, r_edges = code_to_edges(code)
        r_code, _ = minimum_dfs_code(list(r_labels), list(r_edges))
        assert r_code == code

    def test_mapping_is_permutation(self):
        labels = [0, 1, 0, 1]
        edges = [(0, 1, 0), (1, 2, 0), (2, 3, 0)]
        _, mapping = minimum_dfs_code(labels, edges)
        assert sorted(mapping) == [0, 1, 2, 3]


class TestInvariance:
    def test_relabeling_invariance_seeded(self):
        rng = random.Random(99)
        for _ in range(60):
            n = rng.randint(2, 7)
            labels, edges = _random_connected(rng, n)
            code1, _ = minimum_dfs_code(labels, edges)
            perm = list(range(n))
            rng.shuffle(perm)
            labels2, edges2 = _permuted(labels, edges, perm)
            code2, _ = minimum_dfs_code(labels2, edges2)
            assert code1 == code2

    def test_distinctness_vs_networkx(self):
        rng = random.Random(5)
        for _ in range(60):
            pair = []
            for _ in range(2):
                n = rng.randint(2, 6)
                labels, edges = _random_connected(rng, n, 2, 2, extra_max=3)
                pair.append((labels, edges))
            (l1, e1), (l2, e2) = pair
            same_code = (
                minimum_dfs_code(l1, e1)[0] == minimum_dfs_code(l2, e2)[0]
            )
            g1, g2 = nx.Graph(), nx.Graph()
            for i, l in enumerate(l1):
                g1.add_node(i, label=l)
            for a, b, l in e1:
                g1.add_edge(a, b, label=l)
            for i, l in enumerate(l2):
                g2.add_node(i, label=l)
            for a, b, l in e2:
                g2.add_edge(a, b, label=l)
            iso = GraphMatcher(
                g1,
                g2,
                node_match=categorical_node_match("label", None),
                edge_match=categorical_edge_match("label", None),
            ).is_isomorphic()
            assert same_code == iso

    def test_mapping_consistency_under_relabeling(self):
        # The canonical position of a vertex must be stable (up to
        # automorphism orbit) across presentations — the property MNI
        # support counting relies on.
        rng = random.Random(17)
        for _ in range(40):
            n = rng.randint(2, 6)
            labels, edges = _random_connected(rng, n)
            pattern = Pattern(labels, edges)
            orbit_of = pattern.canonical_position_orbits()
            _, mapping = minimum_dfs_code(labels, edges)
            perm = list(range(n))
            rng.shuffle(perm)
            labels2, edges2 = _permuted(labels, edges, perm)
            _, mapping2 = minimum_dfs_code(labels2, edges2)
            for v in range(n):
                pos1 = mapping[v]
                pos2 = mapping2[perm[v]]
                assert orbit_of[pos1] == orbit_of[pos2]


@st.composite
def connected_graphs(draw):
    n = draw(st.integers(min_value=2, max_value=6))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random.Random(seed)
    return _random_connected(rng, n)


class TestProperties:
    @settings(max_examples=40, deadline=None)
    @given(connected_graphs(), st.integers(min_value=0, max_value=10_000))
    def test_relabeling_invariance_property(self, graph, perm_seed):
        labels, edges = graph
        n = len(labels)
        code1, _ = minimum_dfs_code(labels, edges)
        perm = list(range(n))
        random.Random(perm_seed).shuffle(perm)
        labels2, edges2 = _permuted(labels, edges, perm)
        code2, _ = minimum_dfs_code(labels2, edges2)
        assert code1 == code2

    @settings(max_examples=40, deadline=None)
    @given(connected_graphs())
    def test_roundtrip_property(self, graph):
        labels, edges = graph
        code, _ = minimum_dfs_code(labels, edges)
        r_labels, r_edges = code_to_edges(code)
        assert minimum_dfs_code(list(r_labels), list(r_edges))[0] == code

    @settings(max_examples=40, deadline=None)
    @given(connected_graphs())
    def test_code_edge_count_property(self, graph):
        labels, edges = graph
        code, _ = minimum_dfs_code(labels, edges)
        assert len(code) == max(1, len(edges))
