"""Property tests for the sorted-set intersection kernels.

``intersect_slices`` must agree with naive set intersection for every
kernel it dispatches to (linear merge, galloping, leapfrog k-way), and
``range_bounds`` must narrow a sorted slice to exactly the requested
``[lower, upper)`` window.  Both must meter their work into
``Metrics.intersect_comparisons`` / ``Metrics.gallop_steps``.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st

from repro.core.intersect import (
    GALLOP_CROSSOVER,
    intersect_slices,
    range_bounds,
)
from repro.runtime.metrics import Metrics


def _sorted_unique(draw_list):
    return sorted(set(draw_list))


sorted_arrays = st.lists(
    st.integers(min_value=0, max_value=200), max_size=60
).map(_sorted_unique)


def _slice(arr):
    return (arr, 0, len(arr))


class TestIntersectSlices:
    @given(st.lists(sorted_arrays, min_size=1, max_size=5))
    @settings(max_examples=60, deadline=None)
    def test_matches_set_intersection(self, arrays):
        metrics = Metrics()
        result = intersect_slices([_slice(a) for a in arrays], metrics)
        expected = set(arrays[0])
        for a in arrays[1:]:
            expected &= set(a)
        assert result == sorted(expected)

    @given(sorted_arrays, sorted_arrays)
    @settings(max_examples=60, deadline=None)
    def test_two_way(self, a, b):
        metrics = Metrics()
        result = intersect_slices([_slice(a), _slice(b)], metrics)
        assert result == sorted(set(a) & set(b))

    def test_gallop_path_taken_when_skewed(self):
        small = [10, 500, 900]
        big = list(range(1000))
        assert len(big) >= GALLOP_CROSSOVER * len(small)
        metrics = Metrics()
        result = intersect_slices([_slice(small), _slice(big)], metrics)
        assert result == [10, 500, 900]
        # Galloping does binary-search work, not per-element merging.
        assert metrics.gallop_steps > 0
        assert metrics.intersect_comparisons == 0

    def test_merge_path_taken_when_balanced(self):
        a = [1, 3, 5, 7, 9]
        b = [2, 3, 6, 7, 10]
        metrics = Metrics()
        result = intersect_slices([_slice(a), _slice(b)], metrics)
        assert result == [3, 7]
        assert metrics.intersect_comparisons > 0
        assert metrics.gallop_steps == 0

    def test_leapfrog_path_taken_for_three_slices(self):
        a = [1, 2, 3, 4, 5]
        b = [2, 4, 5, 9]
        c = [0, 2, 5, 11]
        metrics = Metrics()
        result = intersect_slices([_slice(a), _slice(b), _slice(c)], metrics)
        assert result == [2, 5]
        assert metrics.gallop_steps > 0

    def test_empty_slice_short_circuits(self):
        metrics = Metrics()
        assert intersect_slices([_slice([]), _slice([1, 2])], metrics) == []
        assert metrics.intersect_comparisons == 0
        assert metrics.gallop_steps == 0

    def test_single_slice_copies(self):
        metrics = Metrics()
        arr = [4, 8, 15]
        result = intersect_slices([_slice(arr)], metrics)
        assert result == arr
        assert result is not arr  # callers may mutate the result

    @given(st.lists(sorted_arrays, min_size=2, max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_subslices_respected(self, arrays):
        # Intersection over interior [lo, hi) windows, as the enumerator
        # passes them from the labeled-adjacency index.
        metrics = Metrics()
        slices = []
        windows = []
        for arr in arrays:
            lo = min(1, len(arr))
            hi = max(lo, len(arr) - 1)
            slices.append((arr, lo, hi))
            windows.append(set(arr[lo:hi]))
        result = intersect_slices(slices, metrics)
        expected = windows[0]
        for w in windows[1:]:
            expected &= w
        assert result == sorted(expected)


class TestRangeBounds:
    @given(
        sorted_arrays,
        st.integers(min_value=-5, max_value=210),
        st.integers(min_value=-5, max_value=210),
    )
    @settings(max_examples=80, deadline=None)
    def test_window(self, arr, lower, upper):
        metrics = Metrics()
        lo, hi = range_bounds(arr, 0, len(arr), lower, upper, metrics)
        assert arr[lo:hi] == [x for x in arr if lower <= x < upper]

    def test_meters_binary_search_steps(self):
        arr = list(range(100))
        metrics = Metrics()
        range_bounds(arr, 0, len(arr), 10, 20, metrics)
        assert metrics.gallop_steps > 0

    def test_noop_window_is_free(self):
        arr = [1, 2, 3]
        metrics = Metrics()
        lo, hi = range_bounds(arr, 0, 3, 0, 10, metrics)
        assert (lo, hi) == (0, 3)
        assert metrics.gallop_steps == 0
