"""Tests for the FSM application (minimum image-based support)."""

import pytest

from repro import FractalContext, Pattern
from repro.apps import fsm
from repro.graph import erdos_renyi_graph, path_graph

from conftest import (
    brute_true_mni,
    iter_connected_edge_sets,
    pattern_of_edge_set,
)


def _ground_truth(graph, min_support, max_edges):
    truth = {}
    for k in range(1, max_edges + 1):
        for combo in iter_connected_edge_sets(graph, k):
            pattern = pattern_of_edge_set(graph, combo)
            code = pattern.canonical_code()
            if code not in truth:
                truth[code] = brute_true_mni(graph, pattern)
    return {code for code, support in truth.items() if support >= min_support}


class TestFSMCorrectness:
    @pytest.mark.parametrize("seed", [9, 21, 33])
    def test_matches_ground_truth(self, seed):
        graph = erdos_renyi_graph(30, 60, n_labels=2, seed=seed)
        result = fsm(
            FractalContext().from_graph(graph), min_support=4, max_edges=3
        )
        mined = {p.canonical_code() for p in result.frequent}
        assert mined == _ground_truth(graph, 4, 3)

    def test_supports_are_exact(self):
        graph = erdos_renyi_graph(30, 60, n_labels=2, seed=9)
        result = fsm(
            FractalContext().from_graph(graph), min_support=4, max_edges=2
        )
        for pattern in result.frequent:
            assert result.support_of(pattern) == brute_true_mni(graph, pattern)

    def test_anti_monotonicity_of_result(self):
        graph = erdos_renyi_graph(30, 70, n_labels=2, seed=12)
        result = fsm(
            FractalContext().from_graph(graph), min_support=4, max_edges=3
        )
        supports = {
            p.canonical_code(): result.support_of(p) for p in result.frequent
        }
        # Every frequent 2+-edge pattern has all its one-smaller connected
        # sub-patterns frequent with support at least its own.
        for pattern in result.frequent:
            if pattern.n_edges < 2:
                continue
            for skip in range(pattern.n_edges):
                sub_edges = [
                    e for i, e in enumerate(pattern.edges) if i != skip
                ]
                touched = sorted({v for a, b, _ in sub_edges for v in (a, b)})
                remap = {v: i for i, v in enumerate(touched)}
                sub = Pattern(
                    [pattern.vertex_labels[v] for v in touched],
                    [(remap[a], remap[b], l) for a, b, l in sub_edges],
                )
                if not sub.is_connected():
                    continue
                assert sub.canonical_code() in supports
                assert supports[sub.canonical_code()] >= supports[
                    pattern.canonical_code()
                ]

    def test_higher_support_fewer_patterns(self):
        graph = erdos_renyi_graph(30, 70, n_labels=2, seed=13)
        low = fsm(FractalContext().from_graph(graph), min_support=3, max_edges=2)
        high = fsm(FractalContext().from_graph(graph), min_support=8, max_edges=2)
        low_set = {p.canonical_code() for p in low.frequent}
        high_set = {p.canonical_code() for p in high.frequent}
        assert high_set <= low_set

    def test_nothing_frequent(self):
        graph = path_graph(4, labels=[1, 2, 3, 4])
        result = fsm(
            FractalContext().from_graph(graph), min_support=2, max_edges=3
        )
        assert not result.frequent
        assert result.rounds == 1

    def test_min_support_validation(self):
        graph = path_graph(3)
        with pytest.raises(ValueError):
            fsm(FractalContext().from_graph(graph), min_support=0)


class TestFSMOptions:
    def test_graph_reduction_preserves_results(self):
        graph = erdos_renyi_graph(35, 75, n_labels=3, seed=14)
        plain = fsm(
            FractalContext().from_graph(graph), min_support=4, max_edges=3
        )
        reduced = fsm(
            FractalContext().from_graph(graph),
            min_support=4,
            max_edges=3,
            reduce_input=True,
        )
        assert {p.canonical_code() for p in plain.frequent} == {
            p.canonical_code() for p in reduced.frequent
        }

    def test_capped_mode_same_set(self):
        graph = erdos_renyi_graph(30, 60, n_labels=2, seed=9)
        exact = fsm(
            FractalContext().from_graph(graph), min_support=4, max_edges=3
        )
        capped = fsm(
            FractalContext().from_graph(graph),
            min_support=4,
            max_edges=3,
            exact=False,
        )
        assert {p.canonical_code() for p in exact.frequent} == {
            p.canonical_code() for p in capped.frequent
        }

    def test_cluster_engine_same_set(self):
        from repro import ClusterConfig

        graph = erdos_renyi_graph(30, 60, n_labels=2, seed=9)
        seq = fsm(FractalContext().from_graph(graph), min_support=4, max_edges=3)
        par = fsm(
            FractalContext(
                engine=ClusterConfig(workers=2, cores_per_worker=2)
            ).from_graph(graph),
            min_support=4,
            max_edges=3,
        )
        assert {p.canonical_code() for p in seq.frequent} == {
            p.canonical_code() for p in par.frequent
        }

    def test_result_helpers(self):
        graph = erdos_renyi_graph(30, 60, n_labels=2, seed=9)
        result = fsm(
            FractalContext().from_graph(graph), min_support=4, max_edges=2
        )
        ordered = result.patterns
        assert ordered == sorted(
            ordered, key=lambda p: (p.n_edges, p.canonical_code())
        )
        assert result.total_simulated_seconds() > 0
        assert result.rounds >= 1
