"""Round-trip tests for graph serialization."""

import pytest

from repro.graph import (
    GraphError,
    erdos_renyi_graph,
    load_adjacency_list,
    load_edge_list,
    load_keywords,
    save_adjacency_list,
    save_edge_list,
    save_keywords,
)


def _graphs_equal(g1, g2, check_labels=True):
    if g1.n_vertices != g2.n_vertices or g1.n_edges != g2.n_edges:
        return False
    for v in g1.vertices():
        if g1.neighbors(v) != g2.neighbors(v):
            return False
        if check_labels and g1.vertex_label(v) != g2.vertex_label(v):
            return False
    return True


class TestAdjacencyListFormat:
    def test_round_trip(self, tmp_path):
        graph = erdos_renyi_graph(20, 40, n_labels=4, seed=1)
        path = str(tmp_path / "graph.adj")
        save_adjacency_list(graph, path)
        loaded = load_adjacency_list(path)
        assert _graphs_equal(graph, loaded)

    def test_isolated_vertex(self, tmp_path):
        path = tmp_path / "iso.adj"
        path.write_text("0 5\n1 6 2\n2 7 1\n")
        graph = load_adjacency_list(str(path))
        assert graph.n_vertices == 3
        assert graph.n_edges == 1
        assert graph.degree(0) == 0
        assert graph.vertex_label(0) == 5

    def test_duplicate_directions_merged(self, tmp_path):
        path = tmp_path / "dup.adj"
        path.write_text("0 0 1\n1 0 0\n")
        graph = load_adjacency_list(str(path))
        assert graph.n_edges == 1

    def test_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "c.adj"
        path.write_text("# header\n\n0 1 1\n1 1 0\n")
        graph = load_adjacency_list(str(path))
        assert graph.n_vertices == 2

    def test_non_sequential_ids_rejected(self, tmp_path):
        path = tmp_path / "bad.adj"
        path.write_text("0 0\n2 0\n")
        with pytest.raises(GraphError):
            load_adjacency_list(str(path))

    def test_short_line_rejected(self, tmp_path):
        path = tmp_path / "short.adj"
        path.write_text("0\n")
        with pytest.raises(GraphError):
            load_adjacency_list(str(path))


class TestEdgeListFormat:
    def test_round_trip_with_labels(self, tmp_path, labeled_graph):
        path = str(tmp_path / "graph.el")
        save_edge_list(labeled_graph, path)
        loaded = load_edge_list(path)
        assert _graphs_equal(labeled_graph, loaded)
        for e in labeled_graph.edges():
            u, v = labeled_graph.edge(e)
            assert loaded.edge_label(loaded.edge_between(u, v)) == \
                labeled_graph.edge_label(e)

    def test_bare_pairs(self, tmp_path):
        path = tmp_path / "bare.el"
        path.write_text("0 1\n1 2\n0 1\n")
        graph = load_edge_list(str(path))
        assert graph.n_vertices == 3
        assert graph.n_edges == 2  # duplicate merged

    def test_non_sequential_vertex_rejected(self, tmp_path):
        path = tmp_path / "bad.el"
        path.write_text("v 0 1\nv 2 1\n")
        with pytest.raises(GraphError):
            load_edge_list(str(path))


class TestKeywordSidecar:
    def test_round_trip(self, tmp_path, labeled_graph):
        edge_path = str(tmp_path / "g.el")
        kw_path = str(tmp_path / "g.keywords")
        save_edge_list(labeled_graph, edge_path)
        save_keywords(labeled_graph, kw_path)
        bare = load_edge_list(edge_path)
        restored = load_keywords(bare, kw_path)
        for v in labeled_graph.vertices():
            assert restored.vertex_keywords(v) == labeled_graph.vertex_keywords(v)
        for e in labeled_graph.edges():
            assert restored.edge_keywords(e) == labeled_graph.edge_keywords(e)

    def test_bad_line_rejected(self, tmp_path, labeled_graph):
        path = tmp_path / "bad.keywords"
        path.write_text("x 0 word\n")
        with pytest.raises(GraphError):
            load_keywords(labeled_graph, str(path))


class TestRoundTripInvariants:
    """Cross-format invariants: isolated vertices, direction, CSR shape."""

    def _csr_equal(self, g1, g2):
        return (
            [g1.neighbors(v) for v in g1.vertices()]
            == [g2.neighbors(v) for v in g2.vertices()]
        )

    def test_isolated_vertices_survive_adjacency_round_trip(self, tmp_path):
        from repro.graph import GraphBuilder

        builder = GraphBuilder()
        builder.add_vertex(label=3)  # isolated
        builder.add_vertex(label=1)
        builder.add_vertex(label=2)
        builder.add_edge(1, 2)
        graph = builder.build()
        path = str(tmp_path / "iso_rt.adj")
        save_adjacency_list(graph, path)
        loaded = load_adjacency_list(path)
        assert loaded.n_vertices == 3
        assert loaded.degree(0) == 0
        assert loaded.vertex_label(0) == 3
        assert _graphs_equal(graph, loaded)

    def test_isolated_vertices_survive_edge_list_round_trip(self, tmp_path):
        from repro.graph import GraphBuilder

        builder = GraphBuilder()
        builder.add_vertex(label=5)  # isolated
        builder.add_vertex(label=0)
        builder.add_vertex(label=0)
        builder.add_edge(1, 2, label=4)
        graph = builder.build()
        path = str(tmp_path / "iso_rt.el")
        save_edge_list(graph, path)
        loaded = load_edge_list(path)
        assert loaded.n_vertices == 3
        assert loaded.degree(0) == 0
        assert loaded.vertex_label(0) == 5
        assert loaded.edge_label(0) == 4

    def test_direction_of_writing_is_immaterial(self, tmp_path):
        # The storage is undirected: an edge written u->v or v->u loads
        # to the same adjacency structure.
        fwd, rev = tmp_path / "fwd.el", tmp_path / "rev.el"
        fwd.write_text("v 0 1\nv 1 2\ne 0 1 7\n")
        rev.write_text("v 0 1\nv 1 2\ne 1 0 7\n")
        g_fwd = load_edge_list(str(fwd))
        g_rev = load_edge_list(str(rev))
        assert self._csr_equal(g_fwd, g_rev)
        assert g_rev.edge_label(g_rev.edge_between(0, 1)) == 7

    def test_csr_identical_after_round_trip(self, tmp_path):
        graph = erdos_renyi_graph(25, 60, n_labels=3, seed=2)
        path = str(tmp_path / "csr.adj")
        save_adjacency_list(graph, path)
        loaded = load_adjacency_list(path)
        assert self._csr_equal(graph, loaded)
        # Edge ids renumber by load order; degrees must still agree.
        assert [graph.degree(v) for v in graph.vertices()] == [
            loaded.degree(v) for v in loaded.vertices()
        ]
