"""Round-trip tests for graph serialization."""

import pytest

from repro.graph import (
    GraphError,
    erdos_renyi_graph,
    load_adjacency_list,
    load_edge_list,
    load_keywords,
    save_adjacency_list,
    save_edge_list,
    save_keywords,
)


def _graphs_equal(g1, g2, check_labels=True):
    if g1.n_vertices != g2.n_vertices or g1.n_edges != g2.n_edges:
        return False
    for v in g1.vertices():
        if g1.neighbors(v) != g2.neighbors(v):
            return False
        if check_labels and g1.vertex_label(v) != g2.vertex_label(v):
            return False
    return True


class TestAdjacencyListFormat:
    def test_round_trip(self, tmp_path):
        graph = erdos_renyi_graph(20, 40, n_labels=4, seed=1)
        path = str(tmp_path / "graph.adj")
        save_adjacency_list(graph, path)
        loaded = load_adjacency_list(path)
        assert _graphs_equal(graph, loaded)

    def test_isolated_vertex(self, tmp_path):
        path = tmp_path / "iso.adj"
        path.write_text("0 5\n1 6 2\n2 7 1\n")
        graph = load_adjacency_list(str(path))
        assert graph.n_vertices == 3
        assert graph.n_edges == 1
        assert graph.degree(0) == 0
        assert graph.vertex_label(0) == 5

    def test_duplicate_directions_merged(self, tmp_path):
        path = tmp_path / "dup.adj"
        path.write_text("0 0 1\n1 0 0\n")
        graph = load_adjacency_list(str(path))
        assert graph.n_edges == 1

    def test_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "c.adj"
        path.write_text("# header\n\n0 1 1\n1 1 0\n")
        graph = load_adjacency_list(str(path))
        assert graph.n_vertices == 2

    def test_non_sequential_ids_rejected(self, tmp_path):
        path = tmp_path / "bad.adj"
        path.write_text("0 0\n2 0\n")
        with pytest.raises(GraphError):
            load_adjacency_list(str(path))

    def test_short_line_rejected(self, tmp_path):
        path = tmp_path / "short.adj"
        path.write_text("0\n")
        with pytest.raises(GraphError):
            load_adjacency_list(str(path))


class TestEdgeListFormat:
    def test_round_trip_with_labels(self, tmp_path, labeled_graph):
        path = str(tmp_path / "graph.el")
        save_edge_list(labeled_graph, path)
        loaded = load_edge_list(path)
        assert _graphs_equal(labeled_graph, loaded)
        for e in labeled_graph.edges():
            u, v = labeled_graph.edge(e)
            assert loaded.edge_label(loaded.edge_between(u, v)) == \
                labeled_graph.edge_label(e)

    def test_bare_pairs(self, tmp_path):
        path = tmp_path / "bare.el"
        path.write_text("0 1\n1 2\n0 1\n")
        graph = load_edge_list(str(path))
        assert graph.n_vertices == 3
        assert graph.n_edges == 2  # duplicate merged

    def test_non_sequential_vertex_rejected(self, tmp_path):
        path = tmp_path / "bad.el"
        path.write_text("v 0 1\nv 2 1\n")
        with pytest.raises(GraphError):
            load_edge_list(str(path))


class TestKeywordSidecar:
    def test_round_trip(self, tmp_path, labeled_graph):
        edge_path = str(tmp_path / "g.el")
        kw_path = str(tmp_path / "g.keywords")
        save_edge_list(labeled_graph, edge_path)
        save_keywords(labeled_graph, kw_path)
        bare = load_edge_list(edge_path)
        restored = load_keywords(bare, kw_path)
        for v in labeled_graph.vertices():
            assert restored.vertex_keywords(v) == labeled_graph.vertex_keywords(v)
        for e in labeled_graph.edges():
            assert restored.edge_keywords(e) == labeled_graph.edge_keywords(e)

    def test_bad_line_rejected(self, tmp_path, labeled_graph):
        path = tmp_path / "bad.keywords"
        path.write_text("x 0 word\n")
        with pytest.raises(GraphError):
            load_keywords(labeled_graph, str(path))
