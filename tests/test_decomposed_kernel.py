"""Pattern-decomposition counting kernel: oracle equivalence and chooser.

The ``decomposed`` kernel counts pure pattern-counting queries without
enumerating every instance: a core–fringe decomposition plus an
inclusion–exclusion combine over labeled-adjacency block sizes
(:mod:`repro.pattern.decompose`).  These tests pin, against the
independent backtracking oracle and the enumeration kernels:

* exact counts — the decomposition executor, forced on random labeled
  (pattern, graph) pairs, matches ``count_pattern_matches``;
* end-to-end counts — ``pattern_kernel="decomposed"`` equals legacy and
  indexed across the sequential, simulator and multiprocess backends;
* the eligibility gate — every aggregation or embedding-requiring
  workflow falls back to enumeration (and is metered as a fallback);
* chooser determinism and the decision record in ``kernel_info``;
* the galloping-crossover plumbing from ``CostModel`` down to
  ``intersect_slices``.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st

from repro import ClusterConfig, FractalContext, Pattern
from repro.apps import QUERY_PATTERNS, fsm, motifs
from repro.apps.queries import count_query_matches, query_fractoid
from repro.core.enumerator import PATTERN_KERNELS, PatternInducedStrategy
from repro.core.intersect import intersect_slices
from repro.graph import erdos_renyi_graph
from repro.pattern.decompose import (
    DECOMPOSITION_MARGIN,
    MIN_CHOSEN_FRINGE,
    REQUIRE_SHARED_FRINGE_BLOCK,
    choose_counting_kernel,
    count_embeddings,
    fallback_info,
    instance_count,
    plan_decomposition,
    plan_step_decomposition,
)
from repro.pattern.isomorphism import count_pattern_matches
from repro.pattern.pattern import PatternInterner
from repro.runtime.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.runtime.metrics import Metrics
from repro.runtime.mp_backend import MultiprocessConfig

# Shapes with non-trivial fringes (stars, diamonds) alongside shapes
# whose cover leaves at most one fringe vertex (cliques, cycles).
PATTERN_SHAPES = [
    [(0, 1), (1, 2)],                                  # path3
    [(0, 1), (1, 2), (0, 2)],                          # triangle
    [(0, 1), (0, 2), (0, 3)],                          # star3
    [(0, 1), (1, 2), (2, 3), (0, 3)],                  # square
    [(0, 1), (1, 2), (2, 3), (0, 3), (0, 2)],          # diamond
    [(0, 1), (0, 2), (1, 2), (0, 3), (1, 3), (0, 4), (1, 4)],  # K2+3 fringe
    [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)],          # tailed triangle
]


@st.composite
def graph_and_pattern(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    n = draw(st.integers(min_value=6, max_value=24))
    max_m = n * (n - 1) // 2
    m = draw(st.integers(min_value=n - 1, max_value=min(3 * n, max_m)))
    n_labels = draw(st.sampled_from([1, 2]))
    n_elabels = draw(st.sampled_from([1, 2]))
    graph = erdos_renyi_graph(
        n, m, n_labels=n_labels, n_edge_labels=n_elabels, seed=seed
    )
    edges = draw(st.sampled_from(PATTERN_SHAPES))
    k = max(max(e) for e in edges) + 1
    vlabels = draw(
        st.lists(
            st.integers(min_value=0, max_value=n_labels - 1),
            min_size=k,
            max_size=k,
        )
    )
    elabels = draw(
        st.lists(
            st.integers(min_value=0, max_value=n_elabels - 1),
            min_size=len(edges),
            max_size=len(edges),
        )
    )
    pattern = Pattern.from_edge_list(
        edges, vertex_labels=vlabels, edge_labels=elabels
    )
    return graph, pattern


def _count(graph, pattern, kernel, engine=None):
    ctx = FractalContext(
        engine=engine if engine is not None else "sequential",
        pattern_kernel=kernel if not isinstance(engine, (ClusterConfig, MultiprocessConfig)) else None,
    )
    fr = query_fractoid(ctx.from_graph(graph), pattern)
    report = fr.execute(collect="count")
    return report.result_count, report


# ----------------------------------------------------------------------
# Oracle equivalence
# ----------------------------------------------------------------------
class TestOracleEquivalence:
    @given(graph_and_pattern())
    @settings(max_examples=40, deadline=None)
    def test_forced_decomposition_matches_oracle(self, gp):
        # The executor itself, with the chooser bypassed: every
        # decomposable shape must count exactly, margins aside.
        graph, pattern = gp
        plan = plan_decomposition(pattern, graph)
        if plan is None:
            return
        expected = count_pattern_matches(pattern, graph)
        metrics = Metrics()
        raw = count_embeddings(plan, graph, metrics)
        assert instance_count(plan, raw) == expected

    @given(graph_and_pattern())
    @settings(max_examples=20, deadline=None)
    def test_end_to_end_kernels_agree(self, gp):
        graph, pattern = gp
        counts = {}
        for kernel in PATTERN_KERNELS:
            counts[kernel], _ = _count(graph, pattern, kernel)
        assert counts["decomposed"] == counts["legacy"] == counts["indexed"]

    def test_query_patterns_agree_across_backends(self, labeled_graph):
        for name, pattern in QUERY_PATTERNS.items():
            baseline, _ = _count(labeled_graph, pattern, "indexed")
            seq, _ = _count(labeled_graph, pattern, "decomposed")
            sim, _ = _count(
                labeled_graph,
                pattern,
                None,
                ClusterConfig(
                    workers=2, cores_per_worker=2, pattern_kernel="decomposed"
                ),
            )
            mp, _ = _count(
                labeled_graph,
                pattern,
                None,
                MultiprocessConfig(num_procs=2, pattern_kernel="decomposed"),
            )
            assert baseline == seq == sim == mp, name


# ----------------------------------------------------------------------
# The decomposition actually runs where it should
# ----------------------------------------------------------------------
class TestDecomposedExecution:
    def _dense_graph(self):
        return erdos_renyi_graph(200, 2400, seed=5)

    def test_double_diamond_uses_decomposition(self):
        graph = self._dense_graph()
        pattern = QUERY_PATTERNS["q7"]
        count, report = _count(graph, pattern, "decomposed")
        summary = report.pattern_kernel_summary()
        decomp = summary["decomposition"]
        assert decomp["executed"] == "count"
        assert decomp["reason"] is None
        assert decomp["plan"]["fringe"]
        assert summary["decomp_core_embeddings"] > 0
        assert summary["decomp_blocks"] > 0
        assert summary["decomp_terms"] > 0
        assert summary["decomp_fallbacks"] == 0
        baseline, base_report = _count(graph, pattern, "indexed")
        assert count == baseline
        # The headline quantity this test pins: the inclusion–exclusion
        # combine must beat *walking* the enumeration tree.  Since the
        # symmetry PR the indexed kernel bulk-counts its orbit tail on
        # counting steps (often cheaper still), so measure the walking
        # baseline with orbit counting off.
        from repro.core.enumerator import set_orbit_counting

        previous = set_orbit_counting(False)
        try:
            _, walk_report = _count(graph, pattern, "indexed")
        finally:
            set_orbit_counting(previous)
        assert (
            summary["candidate_units"]
            < walk_report.pattern_kernel_summary()["candidate_units"]
        )

    def test_decomposed_runs_on_simulator_and_mp(self):
        graph = self._dense_graph()
        pattern = QUERY_PATTERNS["q7"]
        _, sim_report = _count(
            graph,
            pattern,
            None,
            ClusterConfig(
                workers=2, cores_per_worker=2, pattern_kernel="decomposed"
            ),
        )
        assert sim_report.steps[-1].backend_info.get("decomposed") is True
        _, mp_report = _count(
            graph,
            pattern,
            None,
            MultiprocessConfig(num_procs=2, pattern_kernel="decomposed"),
        )
        assert (
            mp_report.steps[-1].backend_info.get("decomposed_in_driver")
            is True
        )

    def test_enumeration_counters_stay_zero(self, labeled_graph):
        # legacy/indexed runs never touch the decomposition counters, so
        # their priced work is bit-identical to the pre-kernel seed.
        for kernel in ("legacy", "indexed"):
            _, report = _count(labeled_graph, QUERY_PATTERNS["q3"], kernel)
            m = report.metrics
            assert m.decomp_core_embeddings == 0
            assert m.decomp_blocks == 0
            assert m.decomp_terms == 0
            assert m.decomp_fallbacks == 0


# ----------------------------------------------------------------------
# Eligibility gate: anything needing embeddings falls back
# ----------------------------------------------------------------------
class TestFallbacks:
    def test_subgraphs_collection_falls_back(self, labeled_graph):
        ctx = FractalContext(pattern_kernel="decomposed")
        fr = query_fractoid(ctx.from_graph(labeled_graph), QUERY_PATTERNS["q3"])
        report = fr.execute(collect="subgraphs")
        decomp = report.pattern_kernel_summary()["decomposition"]
        assert decomp["executed"] == "enumeration"
        assert "embeddings" in decomp["reason"]
        assert report.metrics.decomp_fallbacks >= 1
        # Identical enumeration to the indexed kernel.
        ctx2 = FractalContext(pattern_kernel="indexed")
        fr2 = query_fractoid(
            ctx2.from_graph(labeled_graph), QUERY_PATTERNS["q3"]
        )
        report2 = fr2.execute(collect="subgraphs")
        assert [s.vertices for s in report.subgraphs] == [
            s.vertices for s in report2.subgraphs
        ]

    def test_plan_step_gate_rejects_embedding_consumers(self, labeled_graph):
        pattern = QUERY_PATTERNS["q3"]
        interner = PatternInterner()
        strategy = PatternInducedStrategy(
            labeled_graph, Metrics(), interner, pattern, kernel="decomposed"
        )
        from repro.core.primitives import Aggregate, Expand

        expands = [Expand() for _ in range(pattern.n_vertices)]
        # Pure counting step: eligible.
        plan, info = plan_step_decomposition(
            pattern, labeled_graph, expands, "count", None
        )
        assert info["requested"] is True
        # Any non-count collection: never decomposed.
        for collect in ("subgraphs", None):
            plan, info = plan_step_decomposition(
                pattern, labeled_graph, expands, collect, None
            )
            assert plan is None
        # Aggregations (FSM domain support, motif census): never.
        with_agg = expands + [
            Aggregate("support", lambda s, c: 0, lambda s, c: 1, lambda a, b: a + b)
        ]
        plan, info = plan_step_decomposition(
            pattern, labeled_graph, with_agg, "count", None
        )
        assert plan is None
        assert "embeddings" in info["reason"]
        # Root-restricted steps (resume, partial work): never.
        plan, info = plan_step_decomposition(
            pattern, labeled_graph, expands, "count", [0, 1]
        )
        assert plan is None

    def test_fsm_and_motifs_identical_under_decomposed(self, labeled_graph):
        ctx_a = FractalContext(pattern_kernel="decomposed")
        ctx_b = FractalContext()
        fa = fsm(ctx_a.from_graph(labeled_graph), min_support=2, max_edges=2)
        fb = fsm(ctx_b.from_graph(labeled_graph), min_support=2, max_edges=2)
        assert {p.canonical_code(): fa.support_of(p) for p in fa.frequent} == {
            p.canonical_code(): fb.support_of(p) for p in fb.frequent
        }
        assert ctx_a.last_report.metrics.decomp_core_embeddings == 0
        ma = motifs(ctx_a.from_graph(labeled_graph), 3)
        mb = motifs(ctx_b.from_graph(labeled_graph), 3)
        assert ma == mb

    def test_simulator_fault_and_partition_fall_back(self):
        graph = erdos_renyi_graph(200, 2400, seed=5)
        pattern = QUERY_PATTERNS["q7"]
        baseline, _ = _count(graph, pattern, "indexed")
        for extra in ({"fail_at": {0: 5000.0}}, {"partition": "hash"}):
            config = ClusterConfig(
                workers=2,
                cores_per_worker=2,
                pattern_kernel="decomposed",
                **extra,
            )
            count, report = _count(graph, pattern, None, config)
            assert count == baseline, extra
            decomp = report.pattern_kernel_summary()["decomposition"]
            assert decomp["executed"] == "enumeration", extra
            assert report.metrics.decomp_fallbacks >= 1, extra

    def test_fallback_info_shape(self):
        info = fallback_info("some reason")
        assert info == {
            "requested": True,
            "executed": "enumeration",
            "reason": "some reason",
        }


# ----------------------------------------------------------------------
# Divisibility tripwire: quarantine, not a crash
# ----------------------------------------------------------------------
class TestQuarantine:
    # A prime far larger than any automorphism count: raw totals are
    # never divisible by it, so a tampered divisor trips the invariant.
    BAD_DIVISOR = 1_000_003

    def test_tripwire_names_the_pattern(self):
        import repro.pattern.decompose as decompose

        graph = erdos_renyi_graph(30, 90, seed=2)
        pattern = QUERY_PATTERNS["q1"]
        plan = plan_decomposition(pattern, graph)
        plan.count_divisor = self.BAD_DIVISOR
        with pytest.raises(decompose.DecompositionError) as excinfo:
            instance_count(plan, 7)
        assert excinfo.value.code == pattern.canonical_code()
        assert str(pattern.canonical_code()) in str(excinfo.value)

    def _tampered_planner(self, monkeypatch):
        import repro.pattern.decompose as decompose

        real = decompose.plan_step_decomposition

        def tampered(*args, **kwargs):
            plan, info = real(*args, **kwargs)
            if plan is not None:
                plan.count_divisor = self.BAD_DIVISOR
            return plan, info

        monkeypatch.setattr(
            decompose, "plan_step_decomposition", tampered
        )

    def test_sequential_quarantines_to_enumeration(self, monkeypatch):
        graph = erdos_renyi_graph(200, 2400, seed=5)
        pattern = QUERY_PATTERNS["q7"]
        baseline, _ = _count(graph, pattern, "indexed")
        self._tampered_planner(monkeypatch)
        with pytest.warns(RuntimeWarning, match="not divisible"):
            count, report = _count(graph, pattern, "decomposed")
        assert count == baseline
        decomp = report.pattern_kernel_summary()["decomposition"]
        assert decomp["executed"] == "enumeration"
        assert "quarantined" in decomp["reason"]
        assert str(pattern.canonical_code()) in decomp["reason"]
        m = report.metrics
        assert m.decomp_fallbacks >= 1
        assert m.wasted_extension_tests > 0
        assert m.wasted_work_units > 0

    def test_simulator_quarantines_to_enumeration(self, monkeypatch):
        graph = erdos_renyi_graph(200, 2400, seed=5)
        pattern = QUERY_PATTERNS["q7"]
        baseline, _ = _count(graph, pattern, "indexed")
        self._tampered_planner(monkeypatch)
        config = ClusterConfig(
            workers=2, cores_per_worker=2, pattern_kernel="decomposed"
        )
        with pytest.warns(RuntimeWarning, match="not divisible"):
            count, report = _count(graph, pattern, None, config)
        assert count == baseline
        decomp = report.pattern_kernel_summary()["decomposition"]
        assert decomp["executed"] == "enumeration"
        assert report.metrics.decomp_fallbacks >= 1

    def test_mp_degrade_never_raises(self, monkeypatch):
        import multiprocessing

        import repro.pattern.decompose as decompose

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("multiprocess backend requires fork start method")
        graph = erdos_renyi_graph(200, 2400, seed=5)
        pattern = QUERY_PATTERNS["q7"]
        self._tampered_planner(monkeypatch)
        config = MultiprocessConfig(
            num_procs=2, pattern_kernel="decomposed", degrade="never"
        )
        with pytest.raises(decompose.DecompositionError):
            _count(graph, pattern, None, config)


# ----------------------------------------------------------------------
# Chooser: deterministic, label-statistics-driven
# ----------------------------------------------------------------------
class TestChooser:
    def test_deterministic(self, labeled_graph):
        for pattern in QUERY_PATTERNS.values():
            first = choose_counting_kernel(pattern, labeled_graph)
            for _ in range(3):
                plan, estimates = choose_counting_kernel(
                    pattern, labeled_graph
                )
                assert (plan is None) == (first[0] is None)
                assert estimates == first[1]
                if plan is not None:
                    assert plan.core == first[0].core
                    assert plan.terms == first[0].terms

    def test_margin_and_fringe_gate_applied(self):
        # A chosen plan must clear the safety margin, the
        # minimum-fringe threshold, and the shared-block requirement;
        # a rejected one must fail at least one of them.
        graph = erdos_renyi_graph(80, 400, seed=2)
        for pattern in QUERY_PATTERNS.values():
            plan, est = choose_counting_kernel(pattern, graph)
            enum_u = est["estimated_enumeration_units"]
            dec_u = est["estimated_decomposed_units"]
            if plan is not None:
                assert dec_u * DECOMPOSITION_MARGIN < enum_u
                assert len(plan.fringe) >= MIN_CHOSEN_FRINGE
                if REQUIRE_SHARED_FRINGE_BLOCK:
                    assert plan.shared_fringe_block
            elif dec_u is not None:
                full = plan_decomposition(pattern, graph)
                assert (
                    dec_u * DECOMPOSITION_MARGIN >= enum_u
                    or len(full.fringe) < MIN_CHOSEN_FRINGE
                    or (
                        REQUIRE_SHARED_FRINGE_BLOCK
                        and not full.shared_fringe_block
                    )
                )

    def test_estimates_reported_on_both_paths(self):
        graph = erdos_renyi_graph(200, 2400, seed=5)
        for q, expect_decomposed in (("q7", True), ("q5", False)):
            _, report = _count(graph, QUERY_PATTERNS[q], "decomposed")
            decomp = report.pattern_kernel_summary()["decomposition"]
            assert decomp["estimated_enumeration_units"] > 0
            assert decomp["estimated_decomposed_units"] > 0
            assert (decomp["executed"] == "count") == expect_decomposed


# ----------------------------------------------------------------------
# Config plumbing
# ----------------------------------------------------------------------
class TestConfigPlumbing:
    def test_configs_accept_decomposed(self):
        ClusterConfig(workers=2, cores_per_worker=2, pattern_kernel="decomposed")
        MultiprocessConfig(num_procs=2, pattern_kernel="decomposed")
        with pytest.raises(ValueError):
            ClusterConfig(workers=2, cores_per_worker=2, pattern_kernel="bogus")
        with pytest.raises(ValueError):
            MultiprocessConfig(num_procs=2, pattern_kernel="bogus")

    def test_kernel_constant_lists_decomposed(self):
        assert PATTERN_KERNELS == ("legacy", "indexed", "decomposed")

    def test_count_query_matches_kernel_param(self, labeled_graph):
        ctx = FractalContext()
        fg = ctx.from_graph(labeled_graph)
        pattern = QUERY_PATTERNS["q3"]
        assert count_query_matches(fg, pattern, kernel="decomposed") == (
            count_query_matches(fg, pattern)
        )


# ----------------------------------------------------------------------
# Galloping crossover: CostModel-tunable, default preserved
# ----------------------------------------------------------------------
class TestGallopCrossover:
    # One short sorted run against one long one: ratio 16x.  At
    # crossover 8 the indexed kernel gallops; at 32 it merges.
    SHORT = [4, 20]
    LONG = list(range(0, 64, 2))

    def _meter(self, crossover):
        arr = self.LONG + self.SHORT
        arr = sorted(set(arr))
        slices = [
            (self.LONG, 0, len(self.LONG)),
            (self.SHORT, 0, len(self.SHORT)),
        ]
        metrics = Metrics()
        out = intersect_slices(slices, metrics, crossover=crossover)
        return out, metrics

    def test_crossover_changes_strategy_not_result(self):
        gallop_out, gallop_m = self._meter(2)
        merge_out, merge_m = self._meter(1000)
        assert gallop_out == merge_out == [4, 20]
        assert gallop_m.gallop_steps > 0
        assert merge_m.gallop_steps == 0
        assert merge_m.intersect_comparisons > 0

    def test_default_crossover_is_cost_model_default(self):
        from repro.core.intersect import GALLOP_CROSSOVER

        assert DEFAULT_COST_MODEL.gallop_crossover == GALLOP_CROSSOVER == 8

    def test_cost_model_crossover_reaches_strategy(self):
        # crossover=1 forces two-slice intersections to always gallop:
        # zero linear-merge comparisons, more gallop steps than the
        # default (which only gallops at a 8x size ratio).  Symmetry
        # windows meter gallop_steps via range_bounds regardless, so
        # compare against the default rather than asserting zero.
        graph = erdos_renyi_graph(30, 80, n_labels=2, seed=3)
        pattern = QUERY_PATTERNS["q6"]
        ctx_default = FractalContext(pattern_kernel="indexed")
        fr = query_fractoid(ctx_default.from_graph(graph), pattern)
        default_report = fr.execute(collect="count")
        assert default_report.metrics.intersect_comparisons > 0

        gallop_model = CostModel(gallop_crossover=1)
        ctx_gallop = FractalContext(
            cost_model=gallop_model, pattern_kernel="indexed"
        )
        fr = query_fractoid(ctx_gallop.from_graph(graph), pattern)
        gallop_report = fr.execute(collect="count")

        assert gallop_report.result_count == default_report.result_count
        assert gallop_report.metrics.intersect_comparisons == 0
        assert (
            gallop_report.metrics.gallop_steps
            > default_report.metrics.gallop_steps
        )
