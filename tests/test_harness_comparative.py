"""Tiny-scale integration tests for the comparative harness runners."""

from repro.apps import QUERY_PATTERNS
from repro.graph import erdos_renyi_graph, mico_like, powerlaw_graph
from repro.harness import (
    run_fig11_motifs,
    run_fig12_cliques,
    run_fig13_fsm,
    run_fig15_queries,
    run_fig16_worksteal,
    run_fig20a_triangles,
    run_sec6_overheads,
    run_table2_memory,
    single_machine,
)
from repro.runtime.cluster import ClusterConfig

TINY_CLUSTER = ClusterConfig(workers=2, cores_per_worker=2)


def test_fig11_runner_rows():
    graph = mico_like(scale=0.25)
    rows = run_fig11_motifs([graph], (3,), TINY_CLUSTER, verbose=False)
    assert len(rows) == 1
    row = rows[0]
    assert row["fractal_s"] > 0
    assert row["arabesque_s"] > 0
    assert row["speedup_vs_arabesque"] > 0


def test_fig12_runner_rows():
    graph = mico_like(scale=0.3)
    rows = run_fig12_cliques([graph], (3, 4), TINY_CLUSTER, verbose=False)
    assert [r["k"] for r in rows] == [3, 4]
    for row in rows:
        assert row["qkcount_s"] > 0


def test_fig13_runner_rows():
    graph = powerlaw_graph(60, attach=3, n_labels=3, seed=41)
    rows = run_fig13_fsm([graph], (4, 8), 2, TINY_CLUSTER, verbose=False)
    assert len(rows) == 2
    assert rows[0]["n_frequent"] >= rows[1]["n_frequent"]


def test_fig15_runner_rows():
    graph = erdos_renyi_graph(30, 90, seed=44)
    queries = {"q1": QUERY_PATTERNS["q1"], "q3": QUERY_PATTERNS["q3"]}
    rows = run_fig15_queries(graph, queries, TINY_CLUSTER, verbose=False)
    by_query = {r["query"]: r for r in rows}
    assert set(by_query) == {"q1", "q3"}
    # SEED and Fractal agree on match counts when both complete.
    for row in rows:
        assert row["matches"] >= 0


def test_fig16_runner_rows():
    graph = powerlaw_graph(70, attach=3, n_labels=3, seed=43)
    rows = run_fig16_worksteal(
        graph, min_support=6, max_edges=2, workers=2, cores_per_worker=2,
        verbose=False,
    )
    configs = {r["config"] for r in rows}
    assert len(configs) == 4
    assert all(r["makespan_s"] > 0 for r in rows)


def test_fig20a_runner_rows():
    graph = erdos_renyi_graph(40, 160, seed=45)
    rows = run_fig20a_triangles([graph], TINY_CLUSTER, verbose=False)
    assert len(rows) == 1
    assert rows[0]["graphx_s"] > 0


def test_table2_runner_rows():
    cliques_graph = erdos_renyi_graph(30, 140, n_labels=4, seed=46)
    motifs_graph = erdos_renyi_graph(25, 60, n_labels=4, seed=47)
    rows = run_table2_memory(
        cliques_graph,
        motifs_graph,
        cliques_k=(3,),
        motifs_k=(3,),
        cluster=single_machine(2),
        verbose=False,
    )
    assert len(rows) == 2
    for row in rows:
        assert row["arabesque_gb"] > 0
        assert row["fractal_gb"] > 0
        assert row["ratio"] > 0


def test_sec6_runner_summary():
    graph = mico_like(scale=0.4)
    summary = run_sec6_overheads(graph, clique_k=3, cores=4, verbose=False)
    assert 0 <= summary["steal_overhead_fraction"] < 1
    assert summary["ec_full"] > 0
    assert summary["ec_reduced"] > 0
