"""Tests for Grochow–Kellis / GraphZero-style symmetry breaking.

The load-bearing oracles (hypothesis-driven, satellite of the symmetry
PR):

* **exactly one representative** — for random patterns up to 7 vertices,
  the optimized (minimal) restriction set admits exactly one assignment
  per automorphism class over every permutation of a candidate vertex
  set;
* **restricted count x multiplicity** — on random labeled graphs, the
  number of injective embeddings satisfying the conditions times
  ``|Aut(P)|`` equals the unrestricted embedding count;
* **minimal never larger than heuristic** — the anchor-search optimizer
  can only match or beat the classic min-anchor construction;
* orbit-multiplicity counting and the decomposed restricted core walk
  agree with plain enumeration (see also ``test_decomposed_kernel``).
"""

import math
import random
from itertools import permutations

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st

from repro import FractalContext, Pattern
from repro.core import enumerator
from repro.graph import erdos_renyi_graph
from repro.pattern import (
    automorphisms,
    conditions_by_position,
    count_pattern_matches,
    heuristic_symmetry_breaking_conditions,
    minimal_restriction_set,
    satisfies_conditions,
    symmetry_breaking_conditions,
    symmetry_plan,
)
from repro.runtime.metrics import Metrics


class TestConditions:
    def test_trivial_group_no_conditions(self):
        p = Pattern([0, 1, 2], [(0, 1, 0), (1, 2, 0)])
        assert symmetry_breaking_conditions(p) == []

    def test_clique_chain_order(self):
        conditions = symmetry_breaking_conditions(Pattern.clique(3))
        # K3 needs a *total* order over its three vertices, but its
        # transitive reduction is a chain of two conditions — the
        # GraphZero observation the optimizer implements.
        assert conditions == [(0, 1), (1, 2)]
        k4 = symmetry_breaking_conditions(Pattern.clique(4))
        assert k4 == [(0, 1), (1, 2), (2, 3)]

    def test_exactly_one_representative_per_automorphism_class(self):
        # For every pattern, over all permutations of a candidate vertex
        # set, the number of assignments satisfying the conditions times
        # |Aut| must equal the number of all assignments.
        patterns = [
            Pattern.clique(3),
            Pattern.clique(4),
            Pattern.from_edge_list([(0, 1), (1, 2)]),
            Pattern.from_edge_list([(0, 1), (0, 2), (0, 3)]),
            Pattern.from_edge_list([(0, 1), (1, 2), (2, 3), (3, 0)]),
            Pattern.from_edge_list([(0, 1), (1, 2), (2, 0), (2, 3)]),
        ]
        for pattern in patterns:
            n = pattern.n_vertices
            auts = automorphisms(pattern)
            conditions = symmetry_breaking_conditions(pattern)
            vertex_ids = list(range(10, 10 + n))
            satisfying = 0
            total = 0
            for assignment in permutations(vertex_ids):
                total += 1
                if satisfies_conditions(assignment, conditions):
                    satisfying += 1
            assert satisfying * len(auts) == total, pattern

    def test_conditions_consistent_with_automorphisms(self):
        # A condition (a, b) must only relate vertices within one orbit
        # chain: applying it never eliminates all members of a class.
        p = Pattern.from_edge_list([(0, 1), (1, 2), (2, 3), (3, 0)])
        conditions = symmetry_breaking_conditions(p)
        ids = [4, 9, 2, 7]
        survivors = [
            assignment
            for assignment in permutations(ids)
            if satisfies_conditions(assignment, conditions)
        ]
        assert survivors  # at least one representative exists


# ----------------------------------------------------------------------
# Hypothesis oracles over random patterns
# ----------------------------------------------------------------------


@st.composite
def random_pattern(draw, max_vertices=7):
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    all_pairs = [(a, b) for a in range(n) for b in range(a + 1, n)]
    # Random edge subset; retry via assume for connectivity-free validity
    # (conditions are defined for any simple pattern, connected or not).
    mask = draw(
        st.lists(st.booleans(), min_size=len(all_pairs), max_size=len(all_pairs))
    )
    edges = [pair for pair, keep in zip(all_pairs, mask) if keep]
    hypothesis.assume(edges)
    n_labels = draw(st.sampled_from([1, 1, 2]))
    vlabels = draw(
        st.lists(
            st.integers(min_value=0, max_value=n_labels - 1),
            min_size=n,
            max_size=n,
        )
    )
    return Pattern(vlabels, [(a, b, 0) for a, b in edges])


class TestMinimalRestrictionOracles:
    @given(random_pattern())
    @settings(max_examples=60, deadline=None)
    def test_exactly_one_representative(self, pattern):
        n = pattern.n_vertices
        auts = automorphisms(pattern)
        conditions = symmetry_breaking_conditions(pattern)
        satisfying = sum(
            1
            for assignment in permutations(range(n))
            if satisfies_conditions(assignment, conditions)
        )
        assert satisfying * len(auts) == math.factorial(n)

    @given(random_pattern())
    @settings(max_examples=60, deadline=None)
    def test_minimal_never_larger_than_heuristic(self, pattern):
        plan = minimal_restriction_set(pattern)
        heuristic = heuristic_symmetry_breaking_conditions(pattern)
        assert plan.heuristic_size == len(heuristic)
        assert len(plan.conditions) <= len(heuristic)

    @given(
        random_pattern(max_vertices=5),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_restricted_count_times_multiplicity_is_unrestricted(
        self, pattern, seed
    ):
        # On a random labeled graph: |restricted embeddings| x |Aut(P)|
        # == |all injective embeddings|, by brute force over injective
        # vertex assignments.
        n = pattern.n_vertices
        graph = erdos_renyi_graph(10, 24, n_labels=2, seed=seed)
        conditions = symmetry_breaking_conditions(pattern)

        def is_embedding(assignment):
            for v in range(n):
                if graph.vertex_label(assignment[v]) != pattern.vertex_labels[v]:
                    return False
            for a, b, elabel in pattern.edges:
                eid = graph.edge_between(assignment[a], assignment[b])
                if eid < 0 or graph.edge_label(eid) != elabel:
                    return False
            return True

        unrestricted = 0
        restricted = 0
        for assignment in permutations(range(graph.n_vertices), n):
            if not is_embedding(assignment):
                continue
            unrestricted += 1
            if satisfies_conditions(assignment, conditions):
                restricted += 1
        assert restricted * len(automorphisms(pattern)) == unrestricted


# ----------------------------------------------------------------------
# Orbit-multiplicity counting agrees with the embedding oracle
# ----------------------------------------------------------------------


class TestOrbitCounting:
    @given(
        random_pattern(max_vertices=5),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_count_matches_equals_oracle(self, pattern, seed):
        hypothesis.assume(pattern.is_connected())
        graph = erdos_renyi_graph(14, 40, n_labels=2, seed=seed)
        expected = count_pattern_matches(pattern, graph)
        fc = FractalContext(engine="sequential", pattern_kernel="indexed")
        fr = fc.from_graph(graph).pfractoid(pattern).expand(pattern.n_vertices)
        report = fr.execute(collect="count")
        assert report.result_count == expected
        info = report.steps[-1].kernel_info
        assert info["orbit_count"]["executed"] is True

    def test_orbit_knob_round_trips(self):
        previous = enumerator.set_orbit_counting(False)
        try:
            assert enumerator.orbit_counting_enabled() is False
            graph = erdos_renyi_graph(20, 60, seed=3)
            star = Pattern.from_edge_list([(0, 1), (0, 2), (0, 3)])
            fc = FractalContext(engine="sequential", pattern_kernel="indexed")
            fr = fc.from_graph(graph).pfractoid(star).expand(4)
            report = fr.execute(collect="count")
            # Counting still exact, but walked one node per embedding.
            assert report.result_count == count_pattern_matches(star, graph)
            assert report.metrics.orbit_multiplied_embeddings == 0
        finally:
            enumerator.set_orbit_counting(previous)
        assert enumerator.orbit_counting_enabled() is previous


# ----------------------------------------------------------------------
# Per-pattern plan caching
# ----------------------------------------------------------------------


class TestSymmetryPlanCache:
    def test_cache_hits_are_metered(self):
        pattern = Pattern.clique(3)
        metrics = Metrics()
        order = [0, 1, 2]
        first = symmetry_plan(pattern, order, None, metrics)
        assert metrics.symmetry_cache_hits == 0
        second = symmetry_plan(pattern, order, None, metrics)
        assert metrics.symmetry_cache_hits == 1
        assert second is first

    def test_distinct_orders_cache_separately(self):
        pattern = Pattern.from_edge_list([(0, 1), (1, 2)])
        metrics = Metrics()
        a = symmetry_plan(pattern, [0, 1, 2], None, metrics)
        b = symmetry_plan(pattern, [1, 0, 2], None, metrics)
        assert metrics.symmetry_cache_hits == 0
        assert a.conditions == b.conditions  # same set, different checks
        assert a.checks != b.checks


class TestConditionsByPosition:
    def test_reindexing(self):
        conditions = [(0, 1), (0, 2)]
        order = [2, 0, 1]
        checks = conditions_by_position(conditions, order)
        # Position of vertex 0 is 1; vertex 1 is at 2; vertex 2 at 0.
        # (0, 1): 0 earlier than 1 -> at position 2, must be greater than
        # match at position 1.
        assert (1, True) in checks[2]
        # (0, 2): 2 is at position 0, earlier than 0 at position 1 -> at
        # position 1, vertex 0's match must be smaller than position 0's.
        assert (0, False) in checks[1]

    def test_incremental_equals_final(self):
        rng = random.Random(3)
        p = Pattern.from_edge_list([(0, 1), (0, 2), (0, 3)])
        conditions = symmetry_breaking_conditions(p)
        order = [0, 1, 2, 3]
        checks = conditions_by_position(conditions, order)
        for _ in range(50):
            assignment = rng.sample(range(100), 4)
            final = satisfies_conditions(assignment, conditions)
            incremental = True
            for pos in range(4):
                for earlier, greater in checks[pos]:
                    if greater and assignment[pos] <= assignment[earlier]:
                        incremental = False
                    if not greater and assignment[pos] >= assignment[earlier]:
                        incremental = False
            assert incremental == final
