"""Tests for Grochow-Kellis symmetry-breaking conditions."""

import random
from itertools import permutations

from repro import Pattern
from repro.pattern import (
    automorphisms,
    conditions_by_position,
    satisfies_conditions,
    symmetry_breaking_conditions,
)


def _assignments_of_class(pattern, vertex_set):
    """All bijections vertex positions -> concrete ids for one instance."""
    n = pattern.n_vertices
    for perm in permutations(sorted(vertex_set)):
        yield tuple(perm[: n])


class TestConditions:
    def test_trivial_group_no_conditions(self):
        p = Pattern([0, 1, 2], [(0, 1, 0), (1, 2, 0)])
        assert symmetry_breaking_conditions(p) == []

    def test_clique_total_order(self):
        conditions = symmetry_breaking_conditions(Pattern.clique(3))
        # K3 needs a full order over its three vertices.
        assert len(conditions) == 3

    def test_exactly_one_representative_per_automorphism_class(self):
        # For every pattern, over all permutations of a candidate vertex
        # set, the number of assignments satisfying the conditions times
        # |Aut| must equal the number of all assignments.
        patterns = [
            Pattern.clique(3),
            Pattern.clique(4),
            Pattern.from_edge_list([(0, 1), (1, 2)]),
            Pattern.from_edge_list([(0, 1), (0, 2), (0, 3)]),
            Pattern.from_edge_list([(0, 1), (1, 2), (2, 3), (3, 0)]),
            Pattern.from_edge_list([(0, 1), (1, 2), (2, 0), (2, 3)]),
        ]
        for pattern in patterns:
            n = pattern.n_vertices
            auts = automorphisms(pattern)
            conditions = symmetry_breaking_conditions(pattern)
            vertex_ids = list(range(10, 10 + n))
            satisfying = 0
            total = 0
            for assignment in permutations(vertex_ids):
                total += 1
                if satisfies_conditions(assignment, conditions):
                    satisfying += 1
            assert satisfying * len(auts) == total, pattern

    def test_conditions_consistent_with_automorphisms(self):
        # A condition (a, b) must only relate vertices within one orbit
        # chain: applying it never eliminates all members of a class.
        p = Pattern.from_edge_list([(0, 1), (1, 2), (2, 3), (3, 0)])
        conditions = symmetry_breaking_conditions(p)
        ids = [4, 9, 2, 7]
        survivors = [
            assignment
            for assignment in permutations(ids)
            if satisfies_conditions(assignment, conditions)
        ]
        assert survivors  # at least one representative exists


class TestConditionsByPosition:
    def test_reindexing(self):
        conditions = [(0, 1), (0, 2)]
        order = [2, 0, 1]
        checks = conditions_by_position(conditions, order)
        # Position of vertex 0 is 1; vertex 1 is at 2; vertex 2 at 0.
        # (0, 1): 0 earlier than 1 -> at position 2, must be greater than
        # match at position 1.
        assert (1, True) in checks[2]
        # (0, 2): 2 is at position 0, earlier than 0 at position 1 -> at
        # position 1, vertex 0's match must be smaller than position 0's.
        assert (0, False) in checks[1]

    def test_incremental_equals_final(self):
        rng = random.Random(3)
        p = Pattern.from_edge_list([(0, 1), (0, 2), (0, 3)])
        conditions = symmetry_breaking_conditions(p)
        order = [0, 1, 2, 3]
        checks = conditions_by_position(conditions, order)
        for _ in range(50):
            assignment = rng.sample(range(100), 4)
            final = satisfies_conditions(assignment, conditions)
            incremental = True
            for pos in range(4):
                for earlier, greater in checks[pos]:
                    if greater and assignment[pos] <= assignment[earlier]:
                        incremental = False
                    if not greater and assignment[pos] >= assignment[earlier]:
                        incremental = False
            assert incremental == final
